"""The analytic Gao-Rexford solver vs event-driven convergence.

The load-bearing property: at every scale and seed, the solver's
converged state is routing-indistinguishable from the event engine's —
identical Loc-RIBs, identical forwarding next hops, identical advertised
session state — and perturbations applied after a warm start unfold
exactly as they would on an event-converged engine.

The two modes are *not* byte-identical: the event engine's bookkeeping
byproducts (``change_log``, ``updates_sent``, advanced clock/RNG) record
the convergence storm, and in-flight message crossing can leave stale
Adj-RIB-In entries for withdrawn announcements (no per-session FIFO).
No baseline consumer reads any of that, which is what the
poison-equivalence test pins down.
"""

import pickle

import pytest

from repro.bgp.engine import BGPEngine, EngineConfig
from repro.bgp.origin import OriginController
from repro.bgp.policy import SpeakerConfig
from repro.bgp.solver import (
    Origination,
    SolverUnsupported,
    solve,
    solver_unsupported_reason,
)
from repro.errors import SimulationError
from repro.fuzz.diff import canonical_blob, capture_state
from repro.runner.baseline import (
    ENV_BASELINE_MODE,
    MODE_EVENT,
    MODE_SOLVER,
    ORIGIN_ASN_EVEN,
    converged_internet,
    pack_snapshot,
    resolve_baseline_mode,
    restore_snapshot,
    unpack_snapshot,
)
from repro.runner.cache import DiskCache
from repro.runner.stats import RunStats
from repro.topology.generate import InternetShape, generate_internet

SEEDS = (0, 1, 2, 3, 4)


def _build_pair(scale, seed):
    solver = converged_internet(scale, seed, mode=MODE_SOLVER, cache=None)
    event = converged_internet(scale, seed, mode=MODE_EVENT, cache=None)
    return solver, event


def _assert_routing_equal(solver_engine, event_engine, label):
    assert set(solver_engine.speakers) == set(event_engine.speakers)
    prefixes = set()
    for asn, speaker in solver_engine.speakers.items():
        solver_loc = speaker.table.loc_rib()
        event_loc = event_engine.speakers[asn].table.loc_rib()
        assert solver_loc == event_loc, f"{label}: Loc-RIB differs at AS{asn}"
        prefixes.update(solver_loc)
    for prefix in prefixes:
        assert solver_engine.forwarding_next_hops(
            prefix
        ) == event_engine.forwarding_next_hops(
            prefix
        ), f"{label}: forwarding differs for {prefix}"


def _advertised_state(engine):
    """Per-session advertised announcements, withdrawn entries dropped.

    The event engine keeps ``sent[prefix] = None`` tombstones (and the
    odd stale Adj-RIB-In entry) where message crossing withdrew a route;
    what a neighbor would *act on* is the non-None advertisement set.
    """
    out = {}
    for key, session in engine._sessions.items():
        live = {
            prefix: ann
            for prefix, ann in session.sent.items()
            if ann is not None
        }
        if live:
            out[key] = live
    return out


class TestSolverMatchesEventConvergence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_small(self, seed):
        solver, event = _build_pair("small", seed)
        _assert_routing_equal(
            solver.engine, event.engine, f"small/seed{seed}"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_medium(self, seed):
        solver, event = _build_pair("medium", seed)
        _assert_routing_equal(
            solver.engine, event.engine, f"medium/seed{seed}"
        )

    def test_advertised_session_state_matches(self):
        solver, event = _build_pair("small", 1)
        assert _advertised_state(solver.engine) == _advertised_state(
            event.engine
        )

    def test_multihomed_origin_attachment_matches(self):
        kwargs = dict(
            engine_config=EngineConfig(seed=5),
            origin_providers=2,
            origin_asn_policy=ORIGIN_ASN_EVEN,
            cache=None,
        )
        solver = converged_internet("small", 5, mode=MODE_SOLVER, **kwargs)
        event = converged_internet("small", 5, mode=MODE_EVENT, **kwargs)
        assert solver.origin_asn == event.origin_asn
        _assert_routing_equal(solver.engine, event.engine, "origin/small")

    def test_warm_start_skips_bookkeeping(self):
        base = converged_internet("tiny", 0, mode=MODE_SOLVER, cache=None)
        engine = base.engine
        assert engine.now == 0.0
        assert engine.change_log == []
        assert engine.updates_sent == {}
        # ... and yet every AS routes.
        prefix = next(iter(base.graph.nodes())).prefixes[0]
        hops = engine.forwarding_next_hops(prefix)
        assert set(hops) == set(engine.speakers)

    def test_solver_emits_metrics(self):
        stats = RunStats()
        base = converged_internet(
            "tiny", 0, mode=MODE_SOLVER, cache=None, stats=stats
        )
        prefixes = sum(len(n.prefixes) for n in base.graph.nodes())
        assert stats.counters["solver.prefixes_solved"] == prefixes
        for phase in ("up", "across", "down", "install"):
            assert f"solver.phase_{phase}" in stats.timers


class TestPostPoisonSweep:
    """Baseline equality extended through the repair lifecycle: after a
    poison and again after the unpoison, solver-seeded and event-seeded
    deployments (and a delta-spliced third arm) stay
    routing-indistinguishable — swept across seeds at both scales."""

    RUNGS = ("post-poison", "post-unpoison")

    @staticmethod
    def _ladder(scale, seed, mode, delta_mode="off"):
        """Converge in *mode*, then poison and unpoison; return the
        controller and one full-state blob per rung."""
        base = converged_internet(
            scale,
            seed,
            engine_config=EngineConfig(seed=seed),
            origin_providers=2,
            origin_asn_policy=ORIGIN_ASN_EVEN,
            mode=mode,
            cache=None,
        )
        engine, graph = base.engine, base.graph
        engine.advance_to(engine.now + 60.0)
        engine.reseed(20120813)
        production = graph.node(base.origin_asn).prefixes[0]
        prefixes = sorted(
            {p for node in graph.nodes() for p in node.prefixes}
            | {production},
            key=lambda p: (p.base, p.length),
        )
        controller = OriginController(
            engine, base.origin_asn, production, delta_mode=delta_mode
        )
        controller.announce_baseline()
        engine.run()
        target = sorted(graph.providers(base.origin_asn))[0]
        blobs = []
        controller.poison([target])
        engine.run()
        blobs.append(canonical_blob(capture_state(engine, prefixes)))
        controller.unpoison()
        engine.run()
        blobs.append(canonical_blob(capture_state(engine, prefixes)))
        return controller, blobs

    def _sweep(self, scale, seed):
        _, solver_blobs = self._ladder(scale, seed, MODE_SOLVER)
        _, event_blobs = self._ladder(scale, seed, MODE_EVENT)
        delta_ctl, delta_blobs = self._ladder(
            scale, seed, MODE_SOLVER, delta_mode="auto"
        )
        assert delta_ctl.delta_fallbacks == 0
        assert delta_ctl.delta_applied > 0
        for label, solver_blob, event_blob, delta_blob in zip(
            self.RUNGS, solver_blobs, event_blobs, delta_blobs
        ):
            tag = f"{scale}/seed{seed}/{label}"
            assert solver_blob == event_blob, f"{tag}: solver != event"
            assert delta_blob == event_blob, f"{tag}: delta != event"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_small(self, seed):
        self._sweep("small", seed)

    @pytest.mark.parametrize("seed", (0, 3))
    def test_medium(self, seed):
        self._sweep("medium", seed)


class TestPoisonEquivalence:
    """A warm-started engine reacts to announcements exactly like an
    event-converged one: same route-change sequence (in time relative to
    the perturbation), same per-session update counts."""

    @staticmethod
    def _story(mode):
        base = converged_internet(
            "small",
            3,
            engine_config=EngineConfig(seed=3),
            origin_providers=2,
            origin_asn_policy=ORIGIN_ASN_EVEN,
            mode=mode,
            cache=None,
        )
        engine, graph = base.engine, base.graph
        # Step past every MRAI window left over from convergence, then
        # pin both modes to one RNG stream, as trial drivers do.
        engine.advance_to(engine.now + 60.0)
        engine.reseed(20120813)
        t0 = engine.now
        updates_before = dict(engine.updates_sent)

        production = graph.node(base.origin_asn).prefixes[0]
        controller = OriginController(
            engine, base.origin_asn, production
        )
        controller.announce_baseline()
        engine.run()
        engine.advance_to(engine.now + 400.0)
        target = sorted(graph.providers(base.origin_asn))[0]
        controller.poison([target])
        settle = engine.run()

        changes = [
            (
                round(change.time - t0, 9),
                change.asn,
                str(change.prefix),
                change.old.as_path if change.old else None,
                change.new.as_path if change.new else None,
            )
            for change in engine.changes_since(t0)
        ]
        deltas = {
            session: count - updates_before.get(session, 0)
            for session, count in engine.updates_sent.items()
            if count - updates_before.get(session, 0)
        }
        return changes, deltas, round(settle - t0, 9)

    def test_poison_unfolds_identically(self):
        solver_story = self._story(MODE_SOLVER)
        event_story = self._story(MODE_EVENT)
        assert solver_story[0], "poison produced no route changes"
        assert solver_story == event_story


class TestSolverFallback:
    @staticmethod
    def _engine(**speaker_kwargs):
        graph = generate_internet(
            InternetShape(num_tier1=2, num_tier2=4, num_stubs=8), seed=1
        )
        configs = (
            {asn: SpeakerConfig(**speaker_kwargs) for asn in graph.ases()}
            if speaker_kwargs
            else None
        )
        engine = BGPEngine(graph, EngineConfig(seed=1), configs)
        originations = [
            Origination.make(node.asn, prefix)
            for node in graph.nodes()
            for prefix in node.prefixes
        ]
        return engine, originations

    @pytest.mark.parametrize(
        "speaker_kwargs",
        [
            {"loop_max_occurrences": 2},
            {"reject_peer_paths_from_customers": True},
            {"honours_communities": True},
            {"local_pref_overrides": {1: 150}},
            {"flap_damping": True},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_nonstandard_policy_is_refused(self, speaker_kwargs):
        engine, originations = self._engine(**speaker_kwargs)
        assert solver_unsupported_reason(engine, originations) is not None
        with pytest.raises(SolverUnsupported):
            solve(engine, originations)

    def test_prior_activity_is_refused(self):
        engine, originations = self._engine()
        engine.originate(originations[0].asn, originations[0].prefix)
        engine.run()
        reason = solver_unsupported_reason(engine, originations)
        assert reason is not None and "prior activity" in reason

    def test_warm_start_requires_idle_engine(self):
        engine, originations = self._engine()
        fresh, _ = self._engine()
        result = solve(fresh, originations)
        engine.originate(originations[0].asn, originations[0].prefix)
        with pytest.raises(SimulationError):
            engine.warm_start(result)

    def test_auto_falls_back_and_counts(self, monkeypatch):
        monkeypatch.setattr(
            "repro.runner.baseline.solver_unsupported_reason",
            lambda engine, originations: "patched: unsupported",
        )
        stats = RunStats()
        base = converged_internet(
            "tiny", 2, mode="auto", cache=None, stats=stats
        )
        assert stats.counters["solver.fallbacks"] == 1
        assert base.engine.change_log, "fallback should event-converge"

    def test_solver_mode_raises_instead_of_falling_back(self, monkeypatch):
        monkeypatch.setattr(
            "repro.runner.baseline.solver_unsupported_reason",
            lambda engine, originations: "patched: unsupported",
        )
        with pytest.raises(SolverUnsupported):
            converged_internet("tiny", 2, mode=MODE_SOLVER, cache=None)


class TestBaselineModeplumbing:
    def test_resolve_mode_env_and_validation(self, monkeypatch):
        monkeypatch.delenv(ENV_BASELINE_MODE, raising=False)
        assert resolve_baseline_mode(None) == "auto"
        monkeypatch.setenv(ENV_BASELINE_MODE, MODE_EVENT)
        assert resolve_baseline_mode(None) == MODE_EVENT
        assert resolve_baseline_mode(MODE_SOLVER) == MODE_SOLVER
        with pytest.raises(SimulationError):
            resolve_baseline_mode("warp")

    def test_cli_flag_sets_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv(ENV_BASELINE_MODE, raising=False)
        assert main(["--baseline-mode", "event", "fig1"]) == 0
        import os

        assert os.environ[ENV_BASELINE_MODE] == "event"
        capsys.readouterr()

    def test_cache_keys_separate_modes_but_share_auto(self, tmp_path):
        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        converged_internet(
            "tiny", 4, mode=MODE_SOLVER, cache=cache, stats=stats
        )
        converged_internet(
            "tiny", 4, mode=MODE_EVENT, cache=cache, stats=stats
        )
        assert stats.counters["cache.misses"] == 2
        assert stats.counters.get("cache.hits", 0) == 0
        # auto resolves to solver here, so it shares the solver entry...
        warm = converged_internet(
            "tiny", 4, mode="auto", cache=cache, stats=stats
        )
        assert stats.counters["cache.hits"] == 1
        # ...and serves the solver flavor (no convergence bookkeeping).
        assert warm.engine.change_log == []
        assert "baseline.cache_read" in stats.timers


class TestSnapshotCompression:
    def test_roundtrip_and_zlib_magic(self):
        payload = {"routes": [("AS", index % 7) for index in range(2000)]}
        packed = pack_snapshot(payload)
        assert packed[:1] == b"\x78"
        assert unpack_snapshot(packed) == payload
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(packed) < len(raw)

    def test_legacy_raw_pickle_still_restores(self):
        payload = {"legacy": True}
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        assert raw[:1] == b"\x80"
        assert unpack_snapshot(raw) == payload

    def test_baseline_snapshot_restores_equivalent_engine(self):
        base = converged_internet("tiny", 6, cache=None)
        engine, origin_asn = restore_snapshot(base.snapshot())
        assert origin_asn == base.origin_asn
        _assert_routing_equal(engine, base.engine, "snapshot/tiny")
