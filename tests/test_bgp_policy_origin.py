"""Unit tests for policy quirks, communities, and the origin controller."""

import pytest

from repro.bgp.engine import BGPEngine
from repro.bgp.messages import Announcement, make_path
from repro.bgp.origin import AnnouncementSpec, OriginController
from repro.bgp.policy import NO_EXPORT_TO_PEERS, PolicyEngine, SpeakerConfig
from repro.errors import BGPError, ControlError
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship

P = Prefix("10.50.0.0/16")


def star_graph():
    """Origin 1 with providers 2 and 3; 4 provides both; 5 peers with 4."""
    g = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)
    g.add_link(1, 3, Relationship.PROVIDER)
    g.add_link(2, 4, Relationship.PROVIDER)
    g.add_link(3, 4, Relationship.PROVIDER)
    g.add_link(4, 5, Relationship.PEER)
    return g


class TestPolicyEngine:
    def test_loop_detection_default(self):
        policy = PolicyEngine(asn=7)
        looped = Announcement(prefix=P, as_path=(2, 7, 1))
        assert not policy.accepts(looped, Relationship.CUSTOMER, set())

    def test_loop_detection_disabled(self):
        policy = PolicyEngine(
            asn=7, config=SpeakerConfig(loop_max_occurrences=0)
        )
        looped = Announcement(prefix=P, as_path=(2, 7, 1))
        assert policy.accepts(looped, Relationship.CUSTOMER, set())

    def test_cogent_style_filter(self):
        policy = PolicyEngine(
            asn=7,
            config=SpeakerConfig(reject_peer_paths_from_customers=True),
        )
        peers = {99}
        via_peer = Announcement(prefix=P, as_path=(2, 99, 1))
        clean = Announcement(prefix=P, as_path=(2, 3, 1))
        assert not policy.accepts(via_peer, Relationship.CUSTOMER, peers)
        assert policy.accepts(clean, Relationship.CUSTOMER, peers)
        # The filter only applies to customer sessions.
        assert policy.accepts(via_peer, Relationship.PROVIDER, peers)

    def test_no_export_to_peers_community(self):
        policy = PolicyEngine(
            asn=7, config=SpeakerConfig(honours_communities=True)
        )
        tagged = frozenset({(7, NO_EXPORT_TO_PEERS)})
        assert not policy.may_export_to(
            Relationship.CUSTOMER, Relationship.PEER, tagged
        )
        assert policy.may_export_to(
            Relationship.CUSTOMER, Relationship.CUSTOMER, tagged
        )

    def test_community_ignored_when_not_honoured(self):
        policy = PolicyEngine(asn=7)
        tagged = frozenset({(7, NO_EXPORT_TO_PEERS)})
        assert policy.may_export_to(
            Relationship.CUSTOMER, Relationship.PEER, tagged
        )

    def test_community_stripping(self):
        policy = PolicyEngine(
            asn=7, config=SpeakerConfig(propagates_communities=False)
        )
        communities = frozenset({(7, 1), (8, 2)})
        assert policy.outbound_communities(communities) == frozenset(
            {(7, 1)}
        )

    def test_local_pref_override(self):
        policy = PolicyEngine(
            asn=7,
            config=SpeakerConfig(local_pref_overrides={9: 250}),
        )
        assert policy.local_pref(9, Relationship.PROVIDER) == 250
        assert policy.local_pref(8, Relationship.PROVIDER) == 80


class TestAnnouncementSpec:
    def test_baseline_path(self):
        spec = AnnouncementSpec(prefix=P, prepend=3)
        assert spec.path_for(1, 2) == (1, 1, 1)

    def test_poison_keeps_baseline_length(self):
        spec = AnnouncementSpec(prefix=P, prepend=3, poisoned=(9,))
        assert spec.path_for(1, 2) == (1, 9, 1)
        assert len(spec.path_for(1, 2)) == 3

    def test_large_poison_list_grows_path(self):
        spec = AnnouncementSpec(
            prefix=P, prepend=2, poisoned=(9, 8, 7)
        )
        path = spec.path_for(1, 2)
        assert path[0] == 1 and path[-1] == 1
        assert set((9, 8, 7)).issubset(path)

    def test_selective_overrides_global(self):
        spec = AnnouncementSpec(
            prefix=P, prepend=3, poisoned=(), selective={2: (9,)}
        )
        assert 9 in spec.path_for(1, 2)
        assert 9 not in spec.path_for(1, 3)

    def test_suppressed_provider_gets_nothing(self):
        spec = AnnouncementSpec(
            prefix=P, prepend=3, suppressed_providers=(2,)
        )
        assert spec.path_for(1, 2) is None
        assert spec.path_for(1, 3) is not None


class TestOriginController:
    @pytest.fixture()
    def world(self):
        graph = star_graph()
        engine = BGPEngine(graph)
        controller = OriginController(
            engine, 1, P, sentinel_prefix=Prefix("10.50.0.0/15").supernet(15)
        )
        controller.announce_baseline()
        engine.run()
        return engine, controller

    def test_baseline_reaches_everyone(self, world):
        engine, controller = world
        for asn in (2, 3, 4, 5):
            assert engine.as_path(asn, P) is not None

    def test_poison_and_unpoison(self, world):
        engine, controller = world
        controller.poison([4])
        engine.run()
        assert engine.as_path(4, P) is None
        assert controller.is_poisoning()
        assert controller.currently_poisoned == (4,)
        controller.unpoison()
        engine.run()
        assert engine.as_path(4, P) is not None
        assert not controller.is_poisoning()

    def test_poison_origin_rejected(self, world):
        _engine, controller = world
        with pytest.raises(ControlError):
            controller.poison([1])

    def test_selective_poison_requires_real_provider(self, world):
        _engine, controller = world
        with pytest.raises(ControlError):
            controller.poison_selectively(4, via_providers=[99])

    def test_advertise_only_via(self, world):
        engine, controller = world
        controller.advertise_only_via([2])
        engine.run()
        best = engine.best_route(4, P)
        assert best is not None
        assert best.as_path[0] == 2 or 2 in best.as_path

    def test_announcement_log_records_actions(self, world):
        _engine, controller = world
        controller.poison([4])
        controller.unpoison()
        actions = [entry[1] for entry in controller.log]
        assert any("poison" in a for a in actions)
        assert actions[-1] == "unpoison"

    def test_sentinel_survives_poison(self, world):
        engine, controller = world
        controller.poison([4])
        engine.run()
        assert engine.as_path(4, controller.sentinel_prefix) is not None


class TestMakePathValidation:
    def test_zero_prepend_rejected(self):
        with pytest.raises(BGPError):
            make_path(1, prepend=0)

    def test_self_poison_rejected(self):
        with pytest.raises(BGPError):
            make_path(1, poison=[1])
