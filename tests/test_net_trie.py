"""Unit tests for the longest-prefix-match trie."""

import pytest

from repro.net.addr import Address, Prefix
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie()
    t[Prefix("10.0.0.0/8")] = "eight"
    t[Prefix("10.1.0.0/16")] = "sixteen"
    t[Prefix("10.1.2.0/24")] = "twentyfour"
    return t


class TestLookup:
    def test_longest_match_wins(self, trie):
        prefix, value = trie.lookup("10.1.2.3")
        assert value == "twentyfour"
        assert prefix == Prefix("10.1.2.0/24")

    def test_falls_back_to_covering(self, trie):
        assert trie.lookup_value("10.1.9.9") == "sixteen"
        assert trie.lookup_value("10.9.9.9") == "eight"

    def test_miss_returns_none(self, trie):
        assert trie.lookup("11.0.0.1") is None

    def test_default_route(self):
        t = PrefixTrie()
        t[Prefix("0.0.0.0/0")] = "default"
        assert t.lookup_value("203.0.113.7") == "default"

    def test_lookup_accepts_address_objects(self, trie):
        assert trie.lookup_value(Address("10.1.2.3")) == "twentyfour"


class TestMutation:
    def test_insert_replaces(self, trie):
        trie[Prefix("10.0.0.0/8")] = "new"
        assert trie.exact(Prefix("10.0.0.0/8")) == "new"
        assert len(trie) == 3

    def test_remove(self, trie):
        trie.remove(Prefix("10.1.2.0/24"))
        assert trie.lookup_value("10.1.2.3") == "sixteen"
        assert len(trie) == 2

    def test_remove_missing_raises(self, trie):
        with pytest.raises(KeyError):
            trie.remove(Prefix("10.3.0.0/16"))

    def test_remove_then_lookup_sibling_unaffected(self, trie):
        trie.remove(Prefix("10.1.0.0/16"))
        assert trie.lookup_value("10.1.2.3") == "twentyfour"

    def test_len_and_bool(self):
        t = PrefixTrie()
        assert not t
        t[Prefix("10.0.0.0/8")] = 1
        assert t and len(t) == 1


class TestTraversal:
    def test_items_enumerates_everything(self, trie):
        assert dict(trie.items()) == {
            Prefix("10.0.0.0/8"): "eight",
            Prefix("10.1.0.0/16"): "sixteen",
            Prefix("10.1.2.0/24"): "twentyfour",
        }

    def test_covering_ordering(self, trie):
        covers = trie.covering(Prefix("10.1.2.0/24"))
        assert [p for p, _ in covers] == [
            Prefix("10.0.0.0/8"),
            Prefix("10.1.0.0/16"),
            Prefix("10.1.2.0/24"),
        ]

    def test_contains(self, trie):
        assert Prefix("10.1.0.0/16") in trie
        assert Prefix("10.2.0.0/16") not in trie
