"""Unit tests for the router-level topology."""

import pytest

from repro.errors import TopologyError
from repro.topology.generate import InternetShape, generate_internet
from repro.topology.routers import RouterTopology


@pytest.fixture(scope="module")
def topo():
    graph = generate_internet(
        InternetShape(num_tier1=3, num_tier2=8, num_stubs=15), seed=13
    )
    return graph, RouterTopology.build(graph, seed=13)


class TestBuild:
    def test_every_as_has_routers(self, topo):
        graph, rt = topo
        for asn in graph.ases():
            assert rt.routers_of(asn)

    def test_router_addresses_inside_as_prefix(self, topo):
        graph, rt = topo
        for router in rt.routers():
            prefix = graph.node(router.asn).prefixes[0]
            assert router.address in prefix

    def test_addresses_unique(self, topo):
        _graph, rt = topo
        addresses = [r.address.value for r in rt.routers()]
        assert len(addresses) == len(set(addresses))

    def test_every_as_link_realized(self, topo):
        graph, rt = topo
        for a, b, _rel in graph.links():
            assert rt.as_link_routers(a, b)
            assert rt.as_link_routers(b, a)

    def test_border_flag_set(self, topo):
        graph, rt = topo
        for a, b, _rel in graph.links():
            for ra, rb in rt.as_link_routers(a, b):
                assert rt.router(ra).is_border
                assert rt.router(rb).is_border

    def test_unknown_router_raises(self, topo):
        _graph, rt = topo
        with pytest.raises(TopologyError):
            rt.router("AS999.r0")
        with pytest.raises(TopologyError):
            rt.routers_of(999)


class TestIntraASPaths:
    def test_next_hop_walk_terminates(self, topo):
        graph, rt = topo
        for asn in list(graph.ases())[:10]:
            rids = rt.routers_of(asn)
            if len(rids) < 2:
                continue
            src, dst = rids[0], rids[-1]
            current, steps = src, 0
            while current != dst and steps < 20:
                nxt = rt.intra_next_hop(current, dst)
                assert nxt is not None, "intra-AS graph disconnected"
                current = nxt
                steps += 1
            assert current == dst

    def test_next_hop_none_for_self(self, topo):
        _graph, rt = topo
        rid = next(iter(rt.routers())).rid
        assert rt.intra_next_hop(rid, rid) is None


class TestEgressSelection:
    def test_egress_picks_connected_pair(self, topo):
        graph, rt = topo
        for a, b, _rel in list(graph.links())[:15]:
            src = rt.routers_of(a)[0]
            egress = rt.egress_router(src, b)
            assert egress is not None
            egress_rid, ingress_rid = egress
            assert rt.router(egress_rid).asn == a
            assert rt.router(ingress_rid).asn == b
            assert (egress_rid, ingress_rid) in rt.as_link_routers(a, b)

    def test_egress_none_for_non_neighbor(self, topo):
        graph, rt = topo
        ases = sorted(graph.ases())
        non_adjacent = None
        for a in ases:
            for b in ases:
                if a != b and not graph.has_link(a, b):
                    non_adjacent = (a, b)
                    break
            if non_adjacent:
                break
        a, b = non_adjacent
        assert rt.egress_router(rt.routers_of(a)[0], b) is None

    def test_hot_potato_prefers_closer_border(self, topo):
        """Egress distance from the chosen border router is minimal."""
        graph, rt = topo
        for a, b, _rel in list(graph.links())[:10]:
            options = rt.as_link_routers(a, b)
            if len(options) < 2:
                continue
            src = rt.routers_of(a)[0]
            egress_rid, _ = rt.egress_router(src, b)
            chosen = rt._intra_distance(src, egress_rid)
            for other_egress, _ in options:
                other = rt._intra_distance(src, other_egress)
                if other is not None:
                    assert chosen <= other
