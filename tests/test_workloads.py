"""Tests for the outage trace generator, Hubble dataset, and scenarios."""

import statistics

import pytest

from repro.control.decision import ResidualDurationModel
from repro.errors import ReproError
from repro.workloads.hubble import (
    estimate_update_load,
    generate_hubble_dataset,
)
from repro.workloads.outages import (
    MIN_OUTAGE_SECONDS,
    generate_outage_trace,
)
from repro.workloads.scenarios import build_deployment, build_internet


class TestOutageTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_outage_trace(seed=42)

    def test_size_matches_study(self, trace):
        assert len(trace) == 10308

    def test_minimum_duration_floor(self, trace):
        assert min(trace.durations) >= MIN_OUTAGE_SECONDS

    def test_durations_quantized_to_rounds(self, trace):
        assert all(d % 30.0 == 0 for d in trace.durations)

    def test_fig1_anchor_most_outages_short(self, trace):
        """>90% of outages lasted at most 10 minutes."""
        assert trace.fraction_shorter_than(600.0) > 0.90

    def test_fig1_anchor_long_outages_dominate_downtime(self, trace):
        """~84% of unavailability from outages over 10 minutes."""
        share = trace.unavailability_share_longer_than(600.0)
        assert 0.75 <= share <= 0.92

    def test_median_at_detection_floor(self, trace):
        assert statistics.median(trace.durations) == MIN_OUTAGE_SECONDS

    def test_partial_fraction(self, trace):
        fraction = sum(trace.partial) / len(trace)
        assert 0.74 <= fraction <= 0.84  # paper: 79%

    def test_residual_conditioning(self, trace):
        """Of outages >= 5 min, about half last >= 5 more (§4.2)."""
        model = ResidualDurationModel(trace.durations)
        p = model.survival_probability(300.0, 300.0)
        assert 0.4 <= p <= 0.75

    def test_deterministic_per_seed(self):
        a = generate_outage_trace(seed=7)
        b = generate_outage_trace(seed=7)
        assert a.durations == b.durations

    def test_cdf_output_shape(self, trace):
        points = trace.duration_cdf([90.0, 600.0, 3600.0])
        assert len(points) == 3
        durations, events, downtime = zip(*points)
        assert events == tuple(sorted(events))
        assert downtime == tuple(sorted(downtime))


class TestHubbleDataset:
    def test_p5_anchor(self):
        dataset = generate_hubble_dataset(days=7.0, seed=1)
        p5 = dataset.outages_per_day_at_least(5)
        assert 60_000 <= p5 <= 95_000  # anchor 78,600

    def test_rates_decrease_with_duration(self):
        dataset = generate_hubble_dataset(days=7.0, seed=1)
        p5 = dataset.outages_per_day_at_least(5)
        p15 = dataset.outages_per_day_at_least(15)
        p60 = dataset.outages_per_day_at_least(60)
        assert p5 > p15 > p60 > 0

    def test_update_load_grid(self):
        dataset = generate_hubble_dataset(days=7.0, seed=1)
        grid = estimate_update_load(dataset)
        assert len(grid) == 18  # 3 x 2 x 3
        # Load scales linearly in I and T.
        by_key = {
            (e.deploying_fraction, e.monitored_fraction, e.wait_minutes): e
            for e in grid
        }
        small = by_key[(0.01, 0.5, 15.0)].daily_path_changes
        large = by_key[(0.1, 0.5, 15.0)].daily_path_changes
        assert large == pytest.approx(small * 10)
        # Small deployments stay under 1% of an edge router's daily load.
        assert by_key[(0.01, 1.0, 15.0)].daily_path_changes < 1100


class TestScenarios:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError):
            build_internet("galactic")

    def test_deployment_wiring(self):
        scenario = build_deployment(scale="tiny", seed=2)
        assert scenario.origin_asn in scenario.graph
        assert len(scenario.graph.providers(scenario.origin_asn)) == 2
        assert scenario.origin_asn % 2 == 0
        assert len(scenario.targets) == 4
        # Origin VP plus helpers.
        assert "origin" in scenario.vantage_points
        assert len(scenario.vantage_points) >= 4

    def test_deployment_paths_converged(self):
        scenario = build_deployment(scale="tiny", seed=2)
        vp = scenario.vantage_points.get("origin")
        for target in scenario.targets:
            assert scenario.lifeguard.prober.ping(vp.rid, target).success

    def test_production_prefix_visible_everywhere(self):
        scenario = build_deployment(scale="tiny", seed=2)
        reachable = 0
        for asn in scenario.graph.ases():
            if asn == scenario.origin_asn:
                continue
            if scenario.engine.as_path(asn, scenario.production_prefix):
                reachable += 1
        assert reachable >= len(scenario.graph) - 3
