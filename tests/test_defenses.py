"""Anti-poisoning defenses and the fallback escalation ladder.

Three layers under test:

* the measured defenses themselves — poisoned-path filters, path-length
  caps, Peerlock, reserved-ASN rejection (control plane) and
  default-route-via-provider (data plane) — on hand-built topologies;
* the tier-biased deployment assignment and its monotonicity (the sweep
  compares rates on nested populations);
* the ladder: origin-level fallback mechanisms, ledger-key step
  independence, the end-to-end defense study, and the crash/recovery
  property with ladder state in flight (seeds from ``REPRO_CHAOS_SEEDS``).
"""

import json
import os

import pytest

from repro.bgp.engine import BGPEngine
from repro.bgp.messages import make_path
from repro.bgp.origin import OriginController
from repro.bgp.policy import SpeakerConfig, looks_poisoned
from repro.bgp.solver import Origination, solver_unsupported_reason
from repro.control.journal import RepairJournal
from repro.control.lifeguard import (
    LADDER_STRATEGIES,
    Lifeguard,
    LifeguardConfig,
    RepairState,
)
from repro.dataplane.failures import ASForwardingFailure, FailureSet
from repro.dataplane.fib import build_fibs
from repro.dataplane.forwarding import DataPlane
from repro.errors import ControlError, TopologyError
from repro.experiments.defenses import run_defense_study
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.generate import assign_defense_configs, generate_internet
from repro.topology.generate import InternetShape
from repro.topology.relationships import Relationship
from repro.topology.routers import RouterTopology
from repro.workloads.outages import generate_outage_trace
from repro.workloads.scenarios import build_deployment

P = Prefix("10.100.0.0/16")

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "3,5,7").split(",")
)


def _line_graph():
    """O(1) -- B(2) -- A(3) -- E(4), customer->provider going right."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)
    g.add_link(2, 3, Relationship.PROVIDER)
    g.add_link(3, 4, Relationship.PROVIDER)
    return g


class TestPathLengthCap:
    """A cap on a mid-path AS drops a deep poison in flight."""

    def test_cap_drops_poison_mid_propagation(self):
        g = _line_graph()
        engine = BGPEngine(
            g, speaker_configs={3: SpeakerConfig(as_path_max_length=4)}
        )
        # Short baseline clears the cap everywhere.
        engine.originate(1, P, path=make_path(1, prepend=2))
        engine.run()
        assert engine.as_path(4, P) == (3, 2, 1, 1)

        # A two-ASN sandwich (O-O-97-98-O, length 5) survives the
        # uncapped first hop but exceeds AS3's cap once AS2 prepends
        # itself — the poison dies mid-propagation, not at the origin.
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[97, 98]))
        engine.run()
        assert engine.as_path(2, P) == (1, 1, 97, 98, 1)
        assert engine.as_path(3, P) is None
        assert engine.as_path(4, P) is None

    def test_cap_never_trips_on_the_paper_baseline(self):
        # The measured caps (10/12) sit far above the O-O-O baseline.
        g = _line_graph()
        engine = BGPEngine(
            g, speaker_configs={3: SpeakerConfig(as_path_max_length=10)}
        )
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert engine.as_path(4, P) == (3, 2, 1, 1, 1)


class TestPeerlock:
    """Protected tier-1 ASNs must never arrive in customer-learned paths."""

    def _graph(self):
        # O(1, stub) <- 2 <- 3 (defended transit) <- 10 (tier-1).
        g = ASGraph()
        g.add_as(1, tier=3)
        g.add_as(2, tier=2)
        g.add_as(3, tier=2)
        g.add_as(10, tier=1)
        g.assign_prefix(1, P)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(2, 3, Relationship.PROVIDER)
        g.add_link(3, 10, Relationship.PROVIDER)
        return g

    def test_peerlock_blocks_tier1_poison(self):
        engine = BGPEngine(
            self._graph(),
            speaker_configs={3: SpeakerConfig(peerlock_protected=(10,))},
        )
        engine.originate(1, P, path=make_path(1, prepend=2, poison=[10]))
        engine.run()
        # AS2 (undefended) carries the poison; AS3 hears it from a
        # customer with its protected tier-1 in the path and drops it.
        assert 10 in engine.as_path(2, P)
        assert engine.as_path(3, P) is None

    def test_valley_free_paths_never_false_positive(self):
        # The same protected set accepts every legitimate route: a
        # customer route without the tier-1, and the tier-1's own prefix
        # learned from the provider side (Peerlock is customer-only).
        p10 = Prefix("10.110.0.0/16")
        g = self._graph()
        g.assign_prefix(10, p10)
        engine = BGPEngine(
            g, speaker_configs={3: SpeakerConfig(peerlock_protected=(10,))}
        )
        engine.originate(1, P)
        engine.originate(10, p10)
        engine.run()
        assert engine.as_path(3, P) == (2, 1)
        assert engine.as_path(3, p10) == (10,)
        assert engine.as_path(10, P) == (3, 2, 1)


class TestDefaultRouteStub:
    """A default-routed stub keeps delivering despite a "successful" poison."""

    def _build(self, defended: bool):
        # O(1) and S(3) both buy transit from 2; S default-routes.
        g = ASGraph()
        g.add_as(1, tier=3)
        g.add_as(2, tier=2)
        g.add_as(3, tier=3)
        g.assign_prefix(1, P)
        g.assign_prefix(2, Prefix("10.102.0.0/16"))
        g.assign_prefix(3, Prefix("10.103.0.0/16"))
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(3, 2, Relationship.PROVIDER)
        configs = (
            {3: SpeakerConfig(default_route_via_provider=True)}
            if defended
            else {}
        )
        engine = BGPEngine(g, speaker_configs=configs)
        # Poison S itself: loop detection makes S drop the route, the
        # control-plane definition of the poison having "worked".
        engine.originate(1, P, path=make_path(1, prepend=2, poison=[3]))
        engine.run()
        return g, engine

    def test_poison_succeeds_at_the_control_plane(self):
        _g, engine = self._build(defended=True)
        assert engine.as_path(3, P) is None

    def test_default_route_keeps_forwarding(self):
        g, engine = self._build(defended=True)
        fibs = build_fibs(engine)
        # The FIB falls through to the provider default...
        assert fibs.next_hop_as(3, P.address(1)) == 2
        # ...and packets actually arrive at the origin.
        topo = RouterTopology.build(g, seed=1, unresponsive_fraction=0.0)
        dataplane = DataPlane(topo, fibs, FailureSet())
        src = topo.routers_of(3)[0]
        walk = dataplane.forward(src, P.address(1))
        assert walk.delivered
        assert walk.as_level_hops(topo) == [3, 2, 1]

    def test_without_default_route_the_stub_goes_dark(self):
        _g, engine = self._build(defended=False)
        assert build_fibs(engine).next_hop_as(3, P.address(1)) is None


class TestAssignDefenseConfigs:
    def _graph(self):
        return generate_internet(
            InternetShape(num_tier1=3, num_tier2=10, num_stubs=25), seed=11
        )

    def test_deterministic(self):
        g = self._graph()
        a = assign_defense_configs(g, rate=0.5, seed=4)
        b = assign_defense_configs(g, rate=0.5, seed=4)
        assert a == b

    def test_deployment_grows_monotonically_with_rate(self):
        g = self._graph()
        deployed = [
            set(assign_defense_configs(g, rate=r, seed=4))
            for r in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert deployed[0] == set()
        for thinner, denser in zip(deployed, deployed[1:]):
            assert thinner <= denser
        assert deployed[-1] == set(n.asn for n in g.nodes())

    def test_skip_set_never_defends(self):
        g = self._graph()
        skipped = sorted(g.ases())[:3]
        configs = assign_defense_configs(g, rate=1.0, seed=4, skip=skipped)
        assert not set(skipped) & set(configs)

    def test_tier_bias(self):
        g = self._graph()
        configs = assign_defense_configs(g, rate=1.0, seed=4)
        tiers = {n.asn: n.tier for n in g.nodes()}
        for asn, config in configs.items():
            if tiers[asn] == 1:
                # Tier-1s run the full stack: Peerlock + a cap.
                assert config.peerlock_protected
                assert config.as_path_max_length in (10, 12)
                assert asn not in config.peerlock_protected
            elif tiers[asn] == 3:
                # Stubs either default-route or filter; never Peerlock.
                assert not config.peerlock_protected
                assert not config.as_path_max_length
        stub_defaults = [
            asn
            for asn, c in configs.items()
            if tiers[asn] == 3 and c.default_route_via_provider
        ]
        assert stub_defaults, "some stubs must default-route"
        assert all(
            not configs[asn].default_route_via_provider
            for asn in configs
            if tiers[asn] != 3
        )

    def test_rate_out_of_range_rejected(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            assign_defense_configs(g, rate=1.5)


class TestLooksPoisoned:
    def test_sandwich_detected_and_prepends_ignored(self):
        assert looks_poisoned((1, 6, 1))
        assert looks_poisoned((2, 1, 1, 97, 1))
        assert not looks_poisoned((1,))
        assert not looks_poisoned((3, 2, 1, 1, 1))


class TestSolverGateDefenses:
    """Every control-plane defense knob forces the event engine."""

    @pytest.mark.parametrize(
        "config, slug",
        [
            (SpeakerConfig(filter_poisoned_paths=True),
             "filter_poisoned_paths"),
            (SpeakerConfig(reject_reserved_asns=True),
             "reject_reserved_asns"),
            (SpeakerConfig(as_path_max_length=10), "as_path_max_length"),
            (SpeakerConfig(peerlock_protected=(10,)), "peerlock_protected"),
        ],
    )
    def test_defense_knobs_are_gate_rejected(self, config, slug):
        engine = BGPEngine(_line_graph(), speaker_configs={3: config})
        reason = solver_unsupported_reason(engine, [])
        assert reason == f"AS3: {slug}"

    def test_default_route_is_solver_supported(self):
        # Data-plane only: the solver's control-plane answer is right.
        engine = BGPEngine(
            _line_graph(),
            speaker_configs={
                3: SpeakerConfig(default_route_via_provider=True)
            },
        )
        orig = [Origination.make(1, P)]
        assert solver_unsupported_reason(engine, orig) is None


class TestOriginFallbackModes:
    """The ladder's origin-level mechanisms: prepend steering and
    selective advertisement, ledgered alongside ordinary poisons."""

    def _world(self):
        # Origin 1 dual-homed to 2 and 3; both buy from 4; observer 5.
        g = ASGraph()
        for asn in (1, 2, 3, 4, 5):
            g.add_as(asn)
        g.assign_prefix(1, P)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(1, 3, Relationship.PROVIDER)
        g.add_link(2, 4, Relationship.PROVIDER)
        g.add_link(3, 4, Relationship.PROVIDER)
        g.add_link(5, 4, Relationship.PROVIDER)
        engine = BGPEngine(g)
        controller = OriginController(engine, 1, P)
        controller.announce_baseline()
        engine.run()
        return engine, controller

    def test_steer_prepend_shifts_ingress_and_restores(self):
        engine, controller = self._world()
        before = engine.best_route(4, P).neighbor
        assert before == 2  # tie broken toward the lower neighbor
        controller.steer_prepend([2], key="r1")
        engine.run()
        assert engine.best_route(4, P).neighbor == 3
        controller.unpoison(key="r1")
        engine.run()
        assert engine.best_route(4, P).neighbor == before

    def test_suppress_withdraws_from_the_provider_and_restores(self):
        engine, controller = self._world()
        controller.suppress_providers([2], key="r1")
        engine.run()
        # 2 now only hears the prefix back from its own provider.
        assert engine.as_path(2, P)[0] == 4
        assert engine.best_route(4, P).neighbor == 3
        controller.unpoison(key="r1")
        engine.run()
        assert engine.best_route(4, P).neighbor == 2

    def test_suppressing_every_provider_is_refused(self):
        _engine, controller = self._world()
        controller.suppress_providers([2], key="r1")
        with pytest.raises(ControlError):
            controller.suppress_providers([3], key="r2")

    def test_ledger_keys_are_step_independent(self):
        engine, controller = self._world()
        key = ("origin", "10.9.0.1", 1000.0)
        base = Lifeguard._ledger_key(key)
        assert Lifeguard._ledger_key(key, 0) == base
        stepped = Lifeguard._ledger_key(key, 2)
        assert stepped == base + "|step2"

        # Two rungs of the same repair compose and unwind independently.
        controller.poison([4], key=base)
        controller.suppress_providers([2], key=stepped)
        engine.run()
        controller.unpoison(key=base)
        engine.run()
        assert controller.active_poisons() == {stepped: ("suppress", (2,))}
        assert engine.best_route(4, P).neighbor == 3


class TestDefenseStudy:
    def test_ladder_wins_back_repairs_at_full_deployment(self):
        study = run_defense_study(
            scale="tiny", seed=0, rates=(0.0, 1.0), num_outages=3
        )
        assert study.abandoned_total == 0
        baseline = study.point(0.0, False)
        off = study.point(1.0, False)
        on = study.point(1.0, True)
        # Defenses cost the plain controller repairs; the ladder
        # escalates and wins at least half of them back.
        assert off.repaired < baseline.repaired
        assert on.escalations > 0
        assert on.ladder_repairs > 0
        lost, recovered = study.ladder_recovery(1.0)
        assert lost > 0
        assert recovered * 2 >= lost


_SETTLED = {
    RepairState.POISONED,
    RepairState.NOT_POISONED,
    RepairState.UNPOISONED,
}


def _reverse_transit_for(scenario, target):
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    origin_rid = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_rid).address
    )
    assert walk.delivered, "scenario must start healthy"
    return next(
        a
        for a in walk.as_level_hops(topo)[1:-1]
        if a != scenario.origin_asn
    )


def _mid_ladder(lifeguard):
    """True once some repair has escalated past the first rung."""
    return any(r.escalations > 0 for r in lifeguard.records)


def _drive_ladder(seed, tmp_path, crash):
    """One defended repair cycle with the ladder on; with *crash*, kill
    the controller right after its first escalation and recover it from
    the serialized journal.

    Single-target so the ladder record is the only repair in flight:
    concurrent records would re-isolate after the crash against a
    re-learned atlas, which legitimately diverges from an uninterrupted
    run.  Every non-origin AS gets the sandwich filter, so plain (and
    multi-) poisons are guaranteed to fail and the ladder must climb —
    deterministically, whatever the seed."""
    config = LifeguardConfig(
        fallback_ladder=True,
        breaker_max_failures=len(LADDER_STRATEGIES),
    )
    scenario = build_deployment(
        scale="tiny",
        seed=seed,
        num_providers=2,
        num_targets=1,
        defense_rate=1.0,
        lifeguard_config=config,
    )
    for asn, speaker in scenario.engine.speakers.items():
        if asn != scenario.origin_asn:
            speaker.policy.config.filter_poisoned_paths = True
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    target = scenario.targets[0]
    bad_asn = _reverse_transit_for(scenario, target)
    lifeguard.prime_atlas(now=0.0)
    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn,
            toward=lifeguard.sentinel_manager.sentinel,
            start=1000.0,
            end=9800.0,
        )
    )
    crashed_at = None
    now = 30.0
    while now <= 12000.0:
        if crash and crashed_at is None and _mid_ladder(lifeguard):
            crashed_at = now
            path = str(tmp_path / f"ladder-journal-{seed}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                for entry in lifeguard.journal.entries:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            loaded = RepairJournal.load(path)
            failures = lifeguard.dataplane.failures
            lifeguard = Lifeguard.recover(
                loaded,
                engine=scenario.engine,
                topo=topo,
                origin_asn=scenario.origin_asn,
                vantage_points=scenario.vantage_points,
                targets=scenario.targets,
                duration_history=generate_outage_trace(seed=seed).durations,
                config=config,
                now=now,
                failures=failures,
            )
            # A restarted controller re-learns its path atlas before
            # serving (mirrors the recovery path the experiments use).
            lifeguard.prime_atlas(now=now)
        lifeguard.tick(now)
        now += 30.0
    return lifeguard, crashed_at


class TestLadderCrashRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_mid_ladder_is_byte_identical(self, seed, tmp_path):
        base, _ = _drive_ladder(seed, tmp_path, crash=False)
        assert any(r.escalations > 0 for r in base.records), (
            "defenses at rate 1.0 must force at least one escalation"
        )
        recovered, crashed_at = _drive_ladder(seed, tmp_path, crash=True)
        assert crashed_at is not None, "no mid-ladder crash point reached"
        # The recovered controller carried the ladder position across
        # the restart and finished the repair from there.
        recovery = recovered.journal.of_event("recovered")
        assert len(recovery) == 1
        assert [r.fingerprint() for r in recovered.records] == [
            r.fingerprint() for r in base.records
        ]
