"""The repair guard: post-poison verification, rollback, circuit breaker."""

import pytest

from repro.control.guard import (
    BreakerState,
    PoisonBreaker,
    VerifyOutcome,
    VerifyVerdict,
)
from repro.control.lifeguard import LifeguardConfig, RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.workloads.scenarios import build_deployment

PAIR = ("origin", "0.4.0.1")


class TestPoisonBreaker:
    def test_starts_closed_with_no_failures(self):
        breaker = PoisonBreaker()
        assert breaker.failures(PAIR, 8) == 0
        assert breaker.state(PAIR, 8, now=0.0) is BreakerState.CLOSED

    def test_backoff_doubles_per_failure(self):
        breaker = PoisonBreaker(max_failures=5, backoff=100.0)
        breaker.record_failure(PAIR, 8, now=1000.0)
        assert breaker.retry_at(PAIR, 8) == 1100.0
        breaker.record_failure(PAIR, 8, now=1100.0)
        assert breaker.retry_at(PAIR, 8) == 1300.0
        breaker.record_failure(PAIR, 8, now=1300.0)
        assert breaker.retry_at(PAIR, 8) == 1700.0

    def test_state_walks_backoff_then_closed_then_open(self):
        breaker = PoisonBreaker(max_failures=2, backoff=100.0)
        breaker.record_failure(PAIR, 8, now=1000.0)
        assert breaker.state(PAIR, 8, now=1050.0) is BreakerState.BACKOFF
        assert breaker.state(PAIR, 8, now=1100.0) is BreakerState.CLOSED
        breaker.record_failure(PAIR, 8, now=1100.0)
        assert breaker.state(PAIR, 8, now=99999.0) is BreakerState.OPEN

    def test_entries_are_independent_per_pair_and_asn(self):
        breaker = PoisonBreaker()
        breaker.record_failure(PAIR, 8, now=1000.0)
        assert breaker.failures(PAIR, 9) == 0
        assert breaker.failures(("origin", "0.6.0.1"), 8) == 0

    def test_restore_merges_by_max(self):
        breaker = PoisonBreaker()
        breaker.record_failure(PAIR, 8, now=1000.0)
        breaker.restore(PAIR, 8, failures=3, last_failure=500.0)
        assert breaker.failures(PAIR, 8) == 3
        # The live failure's timestamp wins over the older replayed one.
        assert breaker.retry_at(PAIR, 8) > 1000.0
        breaker.restore(PAIR, 8, failures=1, last_failure=0.0)
        assert breaker.failures(PAIR, 8) == 3


class TestVerifyOutcome:
    def test_rollback_needed_only_for_bad_verdicts(self):
        assert VerifyOutcome(VerifyVerdict.INEFFECTIVE).rollback_needed
        assert VerifyOutcome(VerifyVerdict.HARMFUL).rollback_needed
        assert not VerifyOutcome(VerifyVerdict.EFFECTIVE).rollback_needed
        assert not VerifyOutcome(VerifyVerdict.DEFERRED).rollback_needed

    def test_describe_names_the_dark_destinations(self):
        outcome = VerifyOutcome(
            VerifyVerdict.HARMFUL, collateral_dark=["0.9.0.1"]
        )
        assert "0.9.0.1" in outcome.describe()
        assert "collateral" in outcome.describe()


@pytest.fixture()
def scenario():
    return build_deployment(scale="tiny", seed=5, num_providers=2)


class TestRepairGuardProbes:
    def test_snapshot_excludes_the_outage_destination(self, scenario):
        guard = scenario.lifeguard.guard
        outage_dst = scenario.targets[0]
        control = guard.snapshot_control(
            "origin", scenario.targets, outage_dst, now=100.0
        )
        assert str(outage_dst) not in control
        assert set(control) == {str(t) for t in scenario.targets[1:]}

    def test_snapshot_empty_when_vp_down(self, scenario):
        scenario.vantage_points.mark_down("origin")
        guard = scenario.lifeguard.guard
        control = guard.snapshot_control(
            "origin", scenario.targets, scenario.targets[0], now=100.0
        )
        assert control == ()

    def test_verify_effective_on_healthy_paths(self, scenario):
        guard = scenario.lifeguard.guard
        control = [str(t) for t in scenario.targets[1:]]
        outcome = guard.verify(
            "origin", scenario.targets[0], control, now=100.0
        )
        assert outcome.verdict is VerifyVerdict.EFFECTIVE
        assert outcome.target_reachable
        assert outcome.collateral_dark == []
        assert outcome.probes_used == len(scenario.targets)

    def test_verify_harmful_when_control_destination_goes_dark(
        self, scenario
    ):
        lifeguard = scenario.lifeguard
        victim = scenario.targets[1]
        victim_asn = scenario.topo.router_by_address(victim).asn
        control = lifeguard.guard.snapshot_control(
            "origin", scenario.targets, scenario.targets[0], now=100.0
        )
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=victim_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=150.0,
                end=1000.0,
            )
        )
        outcome = lifeguard.guard.verify(
            "origin", scenario.targets[0], control, now=200.0
        )
        assert outcome.verdict is VerifyVerdict.HARMFUL
        assert str(victim) in outcome.collateral_dark

    def test_verify_deferred_when_vp_down(self, scenario):
        scenario.vantage_points.mark_down("origin")
        outcome = scenario.lifeguard.guard.verify(
            "origin", scenario.targets[0], [], now=100.0
        )
        assert outcome.verdict is VerifyVerdict.DEFERRED


class TestIneffectivePoisonRollback:
    """An outage whose repair path is *also* broken: every poison the
    controller places fails verification, is rolled back, and after
    ``breaker_max_failures`` rollbacks the circuit breaker opens."""

    @pytest.fixture()
    def run(self):
        scenario = build_deployment(
            scale="tiny",
            seed=5,
            num_providers=2,
            lifeguard_config=LifeguardConfig(breaker_backoff=120.0),
        )
        lifeguard = scenario.lifeguard
        topo = scenario.topo
        target = scenario.targets[0]
        origin_rid = topo.routers_of(scenario.origin_asn)[0]
        origin_addr = topo.router(origin_rid).address
        target_rid = lifeguard.dataplane.host_router(target)
        target_asn = topo.router_by_address(target).asn
        walk = lifeguard.dataplane.forward(target_rid, origin_addr)
        bad_asn = next(
            a
            for a in walk.as_level_hops(topo)[1:-1]
            if a != scenario.origin_asn
        )
        sentinel = lifeguard.sentinel_manager.sentinel
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=sentinel, start=1000.0, end=30000.0
            )
        )
        # Tick until the poison lands, then break the *alternate* path it
        # rerouted onto — from here on, no poison of bad_asn can work.
        now = 30.0
        alt_broken = False
        while now <= 2400.0:
            lifeguard.tick(now)
            verifying = next(
                (
                    r
                    for r in lifeguard.records
                    if r.state is RepairState.VERIFYING
                    and r.poisoned_asn == bad_asn
                ),
                None,
            )
            if verifying is not None and not alt_broken:
                alt_broken = True
                walk = lifeguard.dataplane.forward(target_rid, origin_addr)
                alt = next(
                    a
                    for a in walk.as_level_hops(topo)[1:-1]
                    if a not in (scenario.origin_asn, target_asn, bad_asn)
                )
                lifeguard.dataplane.failures.add(
                    ASForwardingFailure(
                        asn=alt, toward=sentinel, start=now, end=30000.0
                    )
                )
            now += 30.0
        record = next(
            r
            for r in lifeguard.records
            if str(r.outage.destination) == str(target)
        )
        return lifeguard, record, bad_asn

    def test_rollback_within_one_repair_check_interval(self, run):
        lifeguard, record, bad_asn = run
        rollbacks = lifeguard.journal.for_outage(record.key)
        rollbacks = [e for e in rollbacks if e["event"] == "rollback"]
        assert rollbacks, "the ineffective poison was never rolled back"
        poisons = [
            e
            for e in lifeguard.journal.for_outage(record.key)
            if e["event"] == "poison"
        ]
        assert (
            rollbacks[0]["t"] - poisons[0]["t"]
            <= lifeguard.config.repair_check_interval
        )

    def test_breaker_opens_after_max_failures(self, run):
        lifeguard, record, bad_asn = run
        assert record.state is RepairState.NOT_POISONED
        assert record.rollbacks == lifeguard.config.breaker_max_failures
        assert any(
            "circuit breaker open" in note for note in record.notes
        )
        breaker = lifeguard.guard.breaker
        pair = (record.outage.vp_name, str(record.outage.destination))
        assert (
            breaker.state(pair, bad_asn, now=1e12) is BreakerState.OPEN
        )

    def test_each_rollback_withdraws_the_poison(self, run):
        lifeguard, record, bad_asn = run
        # Nothing is left announced for this record once the breaker opens.
        key = lifeguard._ledger_key(record.key)
        assert key not in lifeguard.origin.active_poisons()
        assert bad_asn not in lifeguard.origin.currently_poisoned


class TestEffectivePoisonVerified:
    def test_good_poison_passes_verification(self, scenario):
        lifeguard = scenario.lifeguard
        topo = scenario.topo
        target = scenario.targets[0]
        origin_rid = topo.routers_of(scenario.origin_asn)[0]
        target_rid = lifeguard.dataplane.host_router(target)
        walk = lifeguard.dataplane.forward(
            target_rid, topo.router(origin_rid).address
        )
        bad_asn = next(
            a
            for a in walk.as_level_hops(topo)[1:-1]
            if a != scenario.origin_asn
        )
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=1000.0,
                end=8200.0,
            )
        )
        lifeguard.run(start=30.0, end=9600.0)
        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        assert record.state is RepairState.UNPOISONED
        assert record.verified_time is not None
        assert record.verified_time > record.poison_time
        assert record.rollbacks == 0
        assert any("verified" in note for note in record.notes)
        # The pre-poison control snapshot rode along in the journal (here
        # empty: AS8 sat on every target's reverse path, so nothing else
        # was reachable when the poison went out).
        poison_entry = next(
            e
            for e in lifeguard.journal.for_outage(record.key)
            if e["event"] == "poison"
        )
        assert poison_entry.get("control", []) == list(record.control_set)
