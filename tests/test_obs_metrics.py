"""Tests for the metrics registry (repro.obs.metrics) and RunStats bridge."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.runner.stats import RunStats


class TestPrimitives:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        assert registry.counter("c").value == 2

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 7.5)
        assert registry.gauge_values() == {"g": 7.5}

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 99.0):
            hist.observe(value)
        assert hist.cumulative() == [
            (1.0, 2), (10.0, 3), (float("inf"), 4)
        ]
        assert hist.count == 4
        assert hist.total == pytest.approx(105.2)
        assert hist.mean == pytest.approx(26.3)

    def test_histogram_boundary_value_lands_in_bucket(self):
        # Prometheus `le` semantics: a value equal to a bound counts
        # toward that bucket.
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        assert hist.cumulative()[0] == (1.0, 1)

    def test_registry_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_stable(self):
        registry = MetricsRegistry()
        # Insert deliberately out of order.
        registry.inc("z.last")
        registry.inc("a.first")
        registry.observe("m.hist", 3.0)
        registry.set_gauge("k.gauge", 2.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["histograms"]["m.hist"]["buckets"][-1][0] == "+Inf"
        # Byte-identical across identical runs.
        other = MetricsRegistry()
        other.inc("z.last")
        other.inc("a.first")
        other.observe("m.hist", 3.0)
        other.set_gauge("k.gauge", 2.0)
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            other.snapshot(), sort_keys=True
        )

    def test_snapshot_round_trips_through_merge_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.observe("h", 0.2)
        registry.observe("h", 45.0)
        again = MetricsRegistry()
        again.merge_snapshot(
            json.loads(json.dumps(registry.snapshot()))
        )
        assert again.snapshot() == registry.snapshot()


class TestMerge:
    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.observe("h", 0.05)
        b.observe("h", 0.05)
        a.merge(b)
        assert a.counter_values() == {"c": 3}
        hist = a.histogram("h")
        assert hist.count == 2
        assert hist.total == pytest.approx(0.1)

    def test_merge_mismatched_bounds_reobserves_total(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0, 4.0)).observe(3.0)
        b.histogram("h").observe(5.0)
        a.merge(b)
        hist = a.histogram("h")
        assert hist.bounds == (1.0,)
        assert hist.count == 1  # one re-observed sample
        assert hist.total == pytest.approx(8.0)

    def test_default_buckets_cover_repair_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.1
        assert DEFAULT_BUCKETS[-1] >= 1800.0


class TestRunStatsBridge:
    def test_counters_and_timers_views(self):
        stats = RunStats()
        stats.count("z.trials", 2)
        stats.count("a.trials")
        stats.add_time("phase.wall", 1.5)
        stats.add_time("phase.wall", 0.5)
        assert stats.counters == {"a.trials": 1, "z.trials": 2}
        assert stats.timers == {"phase.wall": 2.0}

    def test_as_dict_keys_are_sorted(self):
        stats = RunStats()
        for name in ("zz", "mm", "aa"):
            stats.count(name)
            stats.add_time(name, 1.0)
        doc = stats.as_dict()
        assert list(doc["counters"]) == ["aa", "mm", "zz"]
        assert list(doc["timers"]) == ["aa", "mm", "zz"]

    def test_merge_and_merge_dict(self):
        a, b = RunStats(), RunStats()
        a.count("c")
        b.count("c", 4)
        b.add_time("t", 2.0)
        a.merge(b)
        a.merge_dict({"counters": {"c": 5}, "timers": {"t": 1.0}})
        assert a.counters == {"c": 10}
        assert a.timers == {"t": 3.0}

    def test_registry_is_shared_surface(self):
        registry = MetricsRegistry()
        stats = RunStats(registry=registry)
        stats.count("runner.trials", 3)
        assert registry.counter_values()["runner.trials"] == 3
        # The registry snapshot therefore subsumes the legacy dict.
        assert (
            stats.as_dict()["counters"]
            == registry.snapshot()["counters"]
        )

    def test_cache_hit_rate(self):
        stats = RunStats()
        assert stats.cache_hit_rate is None
        stats.count("cache.hits", 3)
        stats.count("cache.misses", 1)
        assert stats.cache_hit_rate == pytest.approx(0.75)
