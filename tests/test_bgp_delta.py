"""Incremental convergence (repro.bgp.delta): splice-back byte-identity.

The contract under test: applying a change set through ``apply_delta``
leaves the engine byte-identical (``canonical_blob`` of
``capture_state``) to (a) a full event-engine replay of the same
announcement story and (b) a cold ``solve`` + ``warm_start`` of the
post-change origination set.  Seeds come from ``REPRO_DELTA_SEEDS``
(comma-separated) so CI can sweep a matrix.

Also pinned here: the gate's refusal vocabulary (with fallback
accounting), the per-engine solution memo, reset-as-no-op semantics,
``bgp.delta`` observability, and cross-worker digest determinism of
delta-instrumented runs.
"""

import os

import pytest

from repro.bgp.delta import (
    DeltaChange,
    DeltaUnsupported,
    ENV_DELTA_MODE,
    apply_delta,
    delta_unsupported_reason,
    resolve_delta_mode,
    try_apply_delta,
)
from repro.bgp.engine import BGPEngine, EngineConfig
from repro.bgp.messages import make_path
from repro.bgp.origin import OriginController
from repro.bgp.solver import solve
from repro.errors import ControlError
from repro.fuzz.diff import canonical_blob, capture_state
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.runner.baseline import (
    MODE_SOLVER,
    ORIGIN_ASN_EVEN,
    converged_internet,
    restore_snapshot,
)
from repro.runner.core import run_trials
from repro.runner.stats import RunStats

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_DELTA_SEEDS", "0,1,2").split(",")
    if s.strip()
)


def _deployment(scale, seed):
    return converged_internet(
        scale,
        seed,
        mode=MODE_SOLVER,
        origin_providers=2,
        origin_asn_policy=ORIGIN_ASN_EVEN,
        cache=None,
    )


def _story(controller, graph, origin):
    """The CI smoke ladder: poison -> verify (steer) -> unpoison."""
    target = sorted(graph.providers(origin))[0]
    controller.announce_baseline()
    yield
    controller.poison([target], key="repair")
    yield
    controller.steer_prepend([controller.providers[0]], key="repair")
    yield
    controller.unpoison("repair")
    yield


def _replay(base, mode):
    engine, _ = restore_snapshot(base.snapshot())
    origin = base.origin_asn
    prefix = base.graph.node(origin).prefixes[0]
    controller = OriginController(engine, origin, prefix, delta_mode=mode)
    captures = []
    for _ in _story(controller, base.graph, origin):
        engine.run()
        engine.advance_to(engine.now + 600.0)
        captures.append(canonical_blob(capture_state(engine, [prefix])))
    return captures, controller, engine


class TestByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_delta_matches_full_replay(self, seed):
        base = _deployment("small", seed)
        full, _, _ = _replay(base, "off")
        delta, controller, _ = _replay(base, "auto")
        assert controller.delta_fallbacks == 0
        assert controller.delta_applied > 0
        assert delta == full

    def test_delta_matches_cold_solve(self):
        base = _deployment("small", SEEDS[0])
        _, _, engine = _replay(base, "auto")
        # Mid-ladder state too, not just the final baseline: poison once
        # more so the compared state carries a live poison.
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        controller = OriginController(
            engine, origin, prefix, delta_mode="auto"
        )
        controller.announce_baseline()
        controller.poison([sorted(base.graph.providers(origin))[0]])
        assert controller.delta_fallbacks == 0

        originations = sorted(
            (sol.origination for sol in engine._analytic.values()),
            key=lambda org: (org.prefix.base, org.prefix.length),
        )
        cold = BGPEngine(base.graph, EngineConfig(seed=SEEDS[0]))
        cold.warm_start(solve(cold, originations))
        prefixes = [org.prefix for org in originations]
        assert canonical_blob(
            capture_state(engine, prefixes)
        ) == canonical_blob(capture_state(cold, prefixes))

    def test_withdraw_and_reannounce_round_trip(self):
        base = _deployment("tiny", 0)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        before = canonical_blob(capture_state(engine, [prefix]))
        apply_delta(
            engine, [DeltaChange.originate(origin, prefix, path=None)]
        )
        apply_delta(engine, [DeltaChange.withdraw(origin, prefix)])
        assert prefix not in engine._analytic
        assert canonical_blob(capture_state(engine, [prefix])) == before

    def test_reset_is_a_counted_fixpoint_noop(self):
        base = _deployment("tiny", 1)
        engine = base.engine
        some_prefix = next(iter(engine._analytic))
        before = canonical_blob(capture_state(engine, [some_prefix]))
        asn, peer = next(iter(engine._sessions))
        result = apply_delta(engine, [DeltaChange.reset(asn, peer)])
        assert result.resets == 1
        assert engine.session_resets == 1
        assert result.dirty_prefixes == []
        assert canonical_blob(
            capture_state(engine, [some_prefix])
        ) == before
        # A reset of a non-existent session is not counted.
        result = apply_delta(engine, [DeltaChange.reset(asn, asn)])
        assert result.resets == 0

    def test_idempotent_reannounce_is_skipped(self):
        base = _deployment("tiny", 2)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        change = DeltaChange.originate(
            origin, prefix, path=make_path(origin, prepend=2)
        )
        first = apply_delta(engine, [change])
        assert first.dirty_prefixes == [prefix]
        again = apply_delta(engine, [change])
        assert again.dirty_prefixes == []
        assert again.cone_size == 0


class TestSolutionMemo:
    def test_revisited_config_hits_the_memo(self):
        base = _deployment("tiny", 3)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        baseline = DeltaChange.originate(
            origin, prefix, path=make_path(origin, prepend=3)
        )
        target = sorted(base.graph.providers(origin))[0]
        poison = DeltaChange.originate(
            origin, prefix, path=make_path(origin, prepend=2, poison=[target])
        )
        stats = RunStats()
        apply_delta(engine, [baseline], stats=stats)
        apply_delta(engine, [poison], stats=stats)
        hit = apply_delta(engine, [baseline], stats=stats)
        assert hit.solve_cache_hits == 1
        assert hit.solve_seconds == 0.0
        assert stats.counters["solver.delta.solve_cache_hits"] == 1

    def test_event_path_activity_clears_the_memo(self):
        base = _deployment("tiny", 3)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        apply_delta(
            engine, [DeltaChange.originate(origin, prefix, path=None)]
        )
        assert engine._delta_solutions
        engine.originate(origin, prefix, path=make_path(origin, prepend=1))
        engine.run()
        assert engine._delta_solutions == {}
        assert engine._analytic is None


class TestGate:
    @staticmethod
    def _engine(seed=4):
        base = _deployment("tiny", seed)
        return base, base.engine

    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_DELTA_MODE, raising=False)
        assert resolve_delta_mode(None) == "off"
        monkeypatch.setenv(ENV_DELTA_MODE, "auto")
        assert resolve_delta_mode(None) == "auto"
        assert resolve_delta_mode("off") == "off"
        with pytest.raises(ControlError):
            resolve_delta_mode("sideways")

    def test_refusals(self):
        base, engine = self._engine()
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        ok = DeltaChange.originate(origin, prefix)

        assert delta_unsupported_reason(engine, [ok]) is None

        hook, engine.fault_hook = engine.fault_hook, lambda m: m
        assert "fault hook" in delta_unsupported_reason(engine, [ok])
        engine.fault_hook = hook

        engine._queue.append(object())
        assert "events pending" in delta_unsupported_reason(engine, [ok])
        engine._queue.pop()

        avoid = DeltaChange.originate(origin, prefix, avoid=(1,))
        assert "avoid-hint" in delta_unsupported_reason(engine, [avoid])

        tagged = DeltaChange.originate(
            origin, prefix, communities=((64512, 1),)
        )
        assert "communities" in delta_unsupported_reason(engine, [tagged])

        bad_path = DeltaChange.originate(origin, prefix, path=(origin, 0))
        assert "invalid origin path" in delta_unsupported_reason(
            engine, [bad_path]
        )

        stranger = DeltaChange.originate(10**9, prefix)
        assert "unknown AS" in delta_unsupported_reason(engine, [stranger])

        taken, solution = next(iter(engine._analytic.items()))
        owner = solution.origination.asn
        other = next(
            asn for asn in engine.speakers if asn != owner
        )
        moas = DeltaChange.originate(other, taken)
        assert "multiple originations" in delta_unsupported_reason(
            engine, [moas]
        )

        weird = DeltaChange(kind="frobnicate")
        assert "unknown delta change" in delta_unsupported_reason(
            engine, [weird]
        )

    def test_event_activity_turns_the_gate_off(self):
        base, engine = self._engine(5)
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        engine.originate(origin, prefix)
        engine.run()
        reason = delta_unsupported_reason(
            engine, [DeltaChange.originate(origin, prefix)]
        )
        assert "not analytic" in reason
        with pytest.raises(DeltaUnsupported):
            apply_delta(engine, [DeltaChange.originate(origin, prefix)])

    def test_try_apply_counts_and_emits_the_fallback(self):
        base, engine = self._engine(6)
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        stats = RunStats()
        bus = EventBus(metrics=MetricsRegistry())
        engine.obs = bus
        change = DeltaChange.originate(origin, prefix, avoid=(1,))
        assert try_apply_delta(engine, [change], stats=stats) is None
        assert stats.counters["solver.delta.fallbacks"] == 1
        assert stats.counters["solver.delta.fallback.avoid_hint"] == 1
        assert bus.counts["bgp.delta-fallback"] == 1
        snapshot = bus.metrics.snapshot()
        assert snapshot["counters"]["solver.delta.fallbacks"] == 1


class TestControllerPlumbing:
    def test_off_by_default_and_counters_in_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_DELTA_MODE, raising=False)
        base = _deployment("tiny", 7)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        off = OriginController(engine, origin, prefix)
        assert off.delta_mode == "off"
        off.announce_baseline()
        assert off.delta_applied == 0
        # Event-path announcement invalidated the analytic state, so an
        # auto controller on the same engine falls back (and counts).
        engine.run()
        auto = OriginController(engine, origin, prefix, delta_mode="auto")
        auto.announce_baseline()
        assert auto.delta_applied == 0
        assert auto.delta_fallbacks > 0

    def test_auto_controller_records_cones(self):
        base = _deployment("tiny", 8)
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        controller = OriginController(
            base.engine, origin, prefix, delta_mode="auto"
        )
        controller.announce_baseline()
        controller.poison([sorted(base.graph.providers(origin))[0]])
        assert controller.delta_fallbacks == 0
        assert controller.delta_applied == 2
        assert controller.delta_cone_sizes
        assert controller.last_delta is not None
        assert controller.last_delta.cone_size == max(
            controller.delta_cone_sizes[-1], 0
        )


class TestObservability:
    def test_bgp_delta_event_fields(self):
        base = _deployment("tiny", 9)
        engine = base.engine
        bus = EventBus(metrics=MetricsRegistry())
        engine.obs = bus
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        target = sorted(base.graph.providers(origin))[0]
        apply_delta(
            engine, [DeltaChange.originate(origin, prefix, path=None)]
        )
        apply_delta(
            engine,
            [
                DeltaChange.originate(
                    origin,
                    prefix,
                    path=make_path(origin, prepend=2, poison=[target]),
                )
            ],
        )
        deltas = [e for e in bus.events() if e.kind == "bgp.delta"]
        assert len(deltas) == 2
        poisoned = deltas[-1]
        assert poisoned.fields["prefixes"] == 1
        assert poisoned.fields["cone"] > 0
        assert poisoned.fields["rerouted"] >= 0
        assert poisoned.fields["resets"] == 0
        histograms = bus.metrics.snapshot()["histograms"]
        assert "solver.delta.cone_size" in histograms
        assert "solver.delta.splice_seconds" in histograms

    def test_stats_counters_and_timers(self):
        base = _deployment("tiny", 10)
        engine = base.engine
        origin = base.origin_asn
        prefix = base.graph.node(origin).prefixes[0]
        stats = RunStats()
        apply_delta(
            engine,
            [DeltaChange.originate(origin, prefix, path=None)],
            stats=stats,
        )
        assert stats.counters["solver.delta.applied"] == 1
        assert stats.counters["solver.delta.prefixes"] == 1
        assert "solver.delta.solve" in stats.timers
        assert "solver.delta.splice" in stats.timers


def _digest_worker(context, seed):
    """Module-level for process-pool pickling (see run_trials)."""
    base = _deployment("tiny", seed)
    engine, _ = restore_snapshot(base.snapshot())
    bus = EventBus()
    engine.obs = bus
    origin = base.origin_asn
    prefix = base.graph.node(origin).prefixes[0]
    controller = OriginController(
        engine, origin, prefix, delta_mode="auto"
    )
    controller.obs = bus
    for _ in _story(controller, base.graph, origin):
        engine.run()
        engine.advance_to(engine.now + 600.0)
    assert bus.counts.get("bgp.delta", 0) > 0
    return bus.digest()


class TestDeterminism:
    def test_digest_is_worker_count_invariant(self):
        seeds = list(SEEDS)
        serial = run_trials(
            _digest_worker, seeds, workers=1, label="delta.digest"
        )
        parallel = run_trials(
            _digest_worker, seeds, workers=4, label="delta.digest"
        )
        assert serial == parallel
