"""Tests for record-route pings and incremental reverse traceroute."""

import pytest

from repro.dataplane.failures import ASForwardingFailure
from repro.dataplane.probes import RECORD_ROUTE_SLOTS, Prober
from repro.dataplane.reverse_traceroute import ReverseTracerouteTool
from repro.topology.generate import prefix_for_asn


def _stub_routers(graph, topo, count):
    stubs = [n.asn for n in graph.nodes() if n.tier == 3]
    return [topo.routers_of(asn)[0] for asn in stubs[:count]]


@pytest.fixture()
def prober(dataplane):
    return Prober(dataplane)


class TestRecordRoutePing:
    def test_stamps_forward_then_reply(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        result = prober.rr_ping(src, topo.router(dst).address)
        assert result.success
        assert len(result.recorded) <= RECORD_ROUTE_SLOTS
        # Forward stamps end at the destination router.
        request = prober.dataplane.forward(src, topo.router(dst).address)
        forward_stamps = [
            topo.router(rid).address for rid in request.hops[1:]
        ]
        boundary = min(len(forward_stamps), RECORD_ROUTE_SLOTS)
        assert result.recorded[:boundary] == forward_stamps[:boundary]
        # Reply stamps (if any) are the reverse path's first hops.
        if result.recorded_reply:
            reply = prober.dataplane.forward(
                dst, topo.router(src).address
            )
            reply_stamps = [
                topo.router(rid).address for rid in reply.hops[1:]
            ]
            assert result.recorded_reply == reply_stamps[
                : len(result.recorded_reply)
            ]

    def test_fails_without_round_trip(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        reverse_walk = prober.dataplane.forward(
            dst, topo.router(src).address
        )
        bad_asn = reverse_walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(src).asn)
            )
        )
        result = prober.rr_ping(src, topo.router(dst).address)
        assert not result.success
        assert result.recorded == []

    def test_spoofed_rr_records_toward_claimed_source(
        self, small_internet, prober
    ):
        graph, topo, _ = small_internet
        src, dst, helper = _stub_routers(graph, topo, 3)
        claimed = topo.router(helper).address
        result = prober.rr_ping(
            src, topo.router(dst).address, claimed_address=claimed
        )
        if result.success and result.recorded_reply:
            reply = prober.dataplane.forward(dst, claimed)
            reply_stamps = [
                topo.router(rid).address for rid in reply.hops[1:]
            ]
            assert result.recorded_reply == reply_stamps[
                : len(result.recorded_reply)
            ]


class TestIncrementalReverseTraceroute:
    def test_matches_ground_truth_when_coverage_suffices(
        self, small_internet, prober
    ):
        graph, topo, _ = small_internet
        routers = _stub_routers(graph, topo, 6)
        src, dst, helpers = routers[0], routers[1], routers[2:]
        tool = ReverseTracerouteTool(prober)
        measured = tool.measure_incremental(
            src, topo.router(dst).address, vantage_rids=helpers
        )
        assert measured is not None
        truth = prober.dataplane.forward(dst, topo.router(src).address)
        truth_addresses = [
            topo.router(rid).address for rid in truth.hops
        ]
        # The measured assembly must be a prefix-consistent subsequence
        # of the true reverse path ending inside the source AS.
        assert measured.hops[0] == truth_addresses[0]
        assert set(a.value for a in measured.hops) <= set(
            a.value for a in truth_addresses
        )
        last_asn = topo.router_by_address(measured.hops[-1]).asn
        assert last_asn == topo.router(src).asn

    def test_fails_during_reverse_failure(self, small_internet, prober):
        graph, topo, _ = small_internet
        routers = _stub_routers(graph, topo, 6)
        src, dst, helpers = routers[0], routers[1], routers[2:]
        reverse_walk = prober.dataplane.forward(
            dst, topo.router(src).address
        )
        bad_asn = reverse_walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(src).asn)
            )
        )
        tool = ReverseTracerouteTool(prober)
        assert (
            tool.measure_incremental(
                src, topo.router(dst).address, vantage_rids=helpers
            )
            is None
        )

    def test_counts_probes(self, small_internet, prober):
        graph, topo, _ = small_internet
        routers = _stub_routers(graph, topo, 4)
        src, dst, helpers = routers[0], routers[1], routers[2:]
        tool = ReverseTracerouteTool(prober)
        before = prober.probes_sent
        tool.measure_incremental(
            src, topo.router(dst).address, vantage_rids=helpers
        )
        assert prober.probes_sent > before
