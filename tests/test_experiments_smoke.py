"""Smoke tests for every experiment driver at tiny scale.

The benchmarks run the studies at evaluation scale; these tests verify
the drivers' mechanics quickly (structure of outputs, basic invariants).
"""

import pytest

from repro.experiments.accuracy import run_isolation_accuracy_study
from repro.experiments.alternate_paths import run_alternate_path_study
from repro.experiments.convergence import run_poisoning_convergence_study
from repro.experiments.diversity import run_provider_diversity_study
from repro.experiments.efficacy import (
    harvest_path_corpus,
    run_topology_efficacy_study,
)


class TestConvergenceStudy:
    @pytest.fixture(scope="class")
    def study(self):
        study, graph = run_poisoning_convergence_study(
            scale="tiny", seed=3, max_poisons=4
        )
        return study, graph

    def test_two_baselines_per_candidate(self, study):
        study, _graph = study
        prepended = [t for t in study.trials if t.prepended_baseline]
        plain = [t for t in study.trials if not t.prepended_baseline]
        assert len(prepended) == len(plain) > 0
        assert {t.poisoned_asn for t in prepended} == {
            t.poisoned_asn for t in plain
        }

    def test_poisoned_as_never_in_alternates(self, study):
        study, _graph = study
        for trial in study.trials:
            assert trial.found_alternate.isdisjoint(trial.cut_off)
            assert trial.found_alternate <= trial.affected_peers
            assert trial.cut_off <= trial.affected_peers

    def test_loss_rates_bounded(self, study):
        study, _graph = study
        for trial in study.trials:
            if trial.loss_overall is not None:
                assert 0.0 <= trial.loss_overall <= 1.0
            if trial.loss_max_bin is not None:
                assert 0.0 <= trial.loss_max_bin <= 1.0

    def test_event_times_monotonic(self, study):
        study, _graph = study
        times = [t.event_time for t in study.trials]
        assert times == sorted(times)


class TestEfficacyStudy:
    def test_outcomes_unique_and_bounded(self):
        study, graph = run_topology_efficacy_study(
            scale="tiny", seed=3, num_origins=5, max_cases=500
        )
        seen = set()
        for outcome in study.outcomes:
            key = (outcome.source, outcome.origin, outcome.poisoned)
            assert key not in seen
            seen.add(key)
            assert outcome.poisoned != outcome.origin
        assert 0.0 <= study.fraction_with_alternates <= 1.0

    def test_harvest_corpus_paths_start_with_source(self):
        from repro.bgp.engine import BGPEngine
        from repro.workloads.scenarios import build_internet

        graph, _shape = build_internet("tiny", 3)
        engine = BGPEngine(graph)
        for node in graph.nodes():
            for prefix in node.prefixes:
                engine.originate(node.asn, prefix)
        engine.run()
        origins = graph.stubs()[:3]
        corpus = harvest_path_corpus(engine, origins)
        assert corpus
        for path in corpus:
            assert path[-1] in origins
            assert len(path) == len(set(path))  # collapsed, loop-free


class TestDiversityStudy:
    def test_fractions_in_range(self):
        study, _graph = run_provider_diversity_study(
            scale="tiny", seed=3, num_feeds=10, max_reverse_feeds=5
        )
        assert 0.0 <= study.forward_fraction <= 1.0
        assert 0.0 <= study.reverse_fraction <= 1.0
        assert study.forward_avoidable
        assert study.reverse_avoidable


class TestAccuracyStudy:
    def test_case_structure(self):
        study, scenario = run_isolation_accuracy_study(
            scale="tiny", seed=3, num_cases=8
        )
        assert study.cases
        for case in study.cases:
            assert case.result is not None
            assert case.result.probes_used > 0
            assert case.result.elapsed_seconds > 0
        assert 0.0 <= study.accuracy <= 1.0
        assert study.mean_probes > 0


class TestAlternatePathStudy:
    def test_case_structure(self):
        study, _graph = run_alternate_path_study(
            scale="tiny", seed=3, num_sites=10, num_outages=30
        )
        assert study.corpus_size > 0
        assert study.cases
        for case in study.cases:
            assert case.duration >= 1800.0  # the >= 3-round population
            # Triple-test positives are a subset of valley positives.
            if case.alternate_exists:
                assert case.alternate_exists_valley
