"""Tests for the lifeguard-repro command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main
from repro.runner.bench import BENCH_SCHEMA_VERSION


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("fig1", "fig5", "fig6", "efficacy", "accuracy",
                        "table2", "demo", "chaos", "bench"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_workers_flag(self):
        parser = build_parser()
        for command in ("fig6", "efficacy", "accuracy", "chaos", "bench"):
            args = parser.parse_args([command, "--workers", "3"])
            assert args.workers == 3


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "CDF" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out.lower()

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--scale", "tiny", "--max-poisons", "2"]) == 0
        out = capsys.readouterr().out
        assert "prepend" in out

    def test_accuracy_tiny(self, capsys):
        assert main(["accuracy", "--scale", "tiny", "--cases", "4"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out.lower()

    def test_demo(self, capsys):
        assert main(["--seed", "5", "demo"]) == 0
        out = capsys.readouterr().out
        assert "unpoisoned" in out


class TestBench:
    @pytest.fixture(scope="class")
    def bench_doc(self, tmp_path_factory):
        """One quick bench run shared by the document checks."""
        out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
        code = main([
            "bench", "--scale", "tiny", "--only", "alternate_paths",
            "--only", "efficacy", "--output", str(out),
        ])
        assert code == 0
        with open(out, "r", encoding="utf-8") as handle:
            return out, json.load(handle)

    def test_document_shape(self, bench_doc):
        _path, doc = bench_doc
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["scale"] == "tiny"
        assert doc["workers"] == 1
        assert set(doc["benchmarks"]) == {"alternate_paths", "efficacy"}
        for bench in doc["benchmarks"].values():
            assert bench["trials"] > 0
            assert bench["wall_seconds"] > 0
            assert bench["trials_per_sec"] > 0
            assert "metrics" in bench and "stats" in bench
        totals = doc["totals"]
        assert totals["trials"] == sum(
            b["trials"] for b in doc["benchmarks"].values()
        )

    def test_compare_accepts_bench_output(self, bench_doc):
        path, _doc = bench_doc
        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "compare.py"
        )
        result = subprocess.run(
            [sys.executable, script, str(path), str(path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 regressed" in result.stdout

    def test_compare_gates_on_regression(self, bench_doc, tmp_path):
        _path, doc = bench_doc
        # Inflate wall times past compare's noise floor so the gate
        # applies, then halve the candidate's throughput.
        base = json.loads(json.dumps(doc))
        for bench in base["benchmarks"].values():
            bench["wall_seconds"] = 10.0
        slow = json.loads(json.dumps(base))
        for bench in slow["benchmarks"].values():
            bench["trials_per_sec"] *= 0.5
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "compare.py"
        )
        result = subprocess.run(
            [sys.executable, script, str(base_path), str(slow_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout

    def test_compare_skips_sub_noise_floor_runs(self, bench_doc, tmp_path):
        path, doc = bench_doc
        slow = json.loads(json.dumps(doc))
        for bench in slow["benchmarks"].values():
            bench["wall_seconds"] = 0.05
            bench["trials_per_sec"] *= 0.5
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "compare.py"
        )
        result = subprocess.run(
            [sys.executable, script, str(path), str(slow_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "not gated" in result.stdout

    def test_compare_rejects_wrong_schema(self, bench_doc, tmp_path):
        path, doc = bench_doc
        bad = json.loads(json.dumps(doc))
        bad["schema_version"] = 999
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(bad))
        script = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "compare.py"
        )
        result = subprocess.run(
            [sys.executable, script, str(path), str(bad_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0

    def test_unknown_benchmark_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            main([
                "bench", "--scale", "tiny", "--only", "nope",
                "--output", str(tmp_path / "x.json"),
            ])
