"""Tests for the lifeguard-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("fig1", "fig5", "fig6", "efficacy", "accuracy",
                        "table2", "demo"):
            args = parser.parse_args([command])
            assert args.command == command


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "CDF" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out.lower()

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--scale", "tiny", "--max-poisons", "2"]) == 0
        out = capsys.readouterr().out
        assert "prepend" in out

    def test_accuracy_tiny(self, capsys):
        assert main(["accuracy", "--scale", "tiny", "--cases", "4"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out.lower()

    def test_demo(self, capsys):
        assert main(["--seed", "5", "demo"]) == 0
        out = capsys.readouterr().out
        assert "unpoisoned" in out
