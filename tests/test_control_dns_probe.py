"""Tests for DNS-redirection repair detection (§7.2)."""

import pytest

from repro.bgp.messages import make_path
from repro.control.dns_probe import DnsRepairDetector
from repro.dataplane.failures import ASForwardingFailure
from repro.dataplane.probes import Prober
from repro.errors import ControlError
from repro.workloads.scenarios import build_deployment


@pytest.fixture(scope="module")
def world():
    """An origin announcing two production prefixes P1 and P2."""
    scenario = build_deployment(scale="tiny", seed=27, num_providers=2)
    engine = scenario.engine
    origin = scenario.origin_asn
    p1 = scenario.production_prefix
    # Second prefix from the sentinel's unused half: clean baseline.
    sentinel = scenario.lifeguard.sentinel_manager.sentinel
    p2 = next(h for h in sentinel.subnets(p1.length) if h != p1)
    scenario.graph.assign_prefix(origin, p2)
    engine.originate(origin, p2, path=make_path(origin, prepend=3))
    engine.run()
    scenario.lifeguard.refresh_dataplane()
    return scenario, p1, p2


def _client_and_faulty_as(scenario, p1):
    topo = scenario.topo
    lifeguard = scenario.lifeguard
    client_asn = next(
        a
        for a in scenario.graph.stubs()
        if a != scenario.origin_asn
        and scenario.engine.as_path(a, p1) is not None
    )
    client_rid = topo.routers_of(client_asn)[0]
    walk = lifeguard.dataplane.forward(client_rid, p1.address(1))
    transits = [
        a
        for a in walk.as_level_hops(topo)[1:-1]
        if a != scenario.origin_asn
    ]
    return client_rid, transits[0]


class TestPremise:
    def test_probe_prefix_must_differ(self, world):
        scenario, p1, _p2 = world
        prober = Prober(scenario.lifeguard.dataplane)
        with pytest.raises(ControlError):
            DnsRepairDetector(prober, p1, p1)
        with pytest.raises(ControlError):
            DnsRepairDetector(prober, p1, p1.supernet(p1.length - 1))

    def test_routes_consistent_absent_poison(self, world):
        scenario, p1, p2 = world
        prober = Prober(scenario.lifeguard.dataplane)
        detector = DnsRepairDetector(prober, p1, p2)
        client_rid, _bad = _client_and_faulty_as(scenario, p1)
        assert detector.routes_consistent(client_rid)


class TestRepairDetection:
    def test_detects_repair_when_failure_clears(self, world):
        scenario, p1, p2 = world
        lifeguard = scenario.lifeguard
        client_rid, bad_asn = _client_and_faulty_as(scenario, p1)
        prober = Prober(lifeguard.dataplane)
        detector = DnsRepairDetector(prober, p1, p2)

        sentinel = lifeguard.sentinel_manager.sentinel
        failure = ASForwardingFailure(
            asn=bad_asn, toward=sentinel, start=0.0, end=1000.0
        )
        lifeguard.dataplane.failures.add(failure)
        try:
            # While the failure holds, P2 fetches fail (P2 still routes
            # through the faulty AS).
            check = detector.check_repair([client_rid], now=500.0)
            assert not check.repaired
            # After the failure clears, the fetch lands in the logs.
            check = detector.check_repair([client_rid], now=1500.0)
            assert check.repaired
            assert check.clients_reaching_p2
            assert check.probes_used >= 1
        finally:
            lifeguard.dataplane.failures.remove(failure)
