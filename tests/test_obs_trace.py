"""Tests for repair-timeline tracing (repro.obs.trace).

The end-to-end half runs the demo scenario (shortened horizon) under an
observed bus once per module and asserts the full repair lifecycle —
detection → isolation → poison → convergence → verification →
repair-detection → unpoison — reconstructs from the event log alone.
"""

import json

import pytest

from repro.obs.events import Event, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Span,
    assemble_timelines,
    render_timeline,
    render_timelines,
)
from repro.workloads.scenarios import run_demo_scenario

#: Shortened demo horizon: the outage heals at t=2400 so the whole
#: lifecycle (through unpoison) fits well inside end=3600.
DEMO_KWARGS = dict(seed=0, fail_start=1000.0, fail_end=2400.0, end=3600.0)


@pytest.fixture(scope="module")
def observed_demo():
    registry = MetricsRegistry()
    bus = EventBus(metrics=registry)
    scenario, bad_asn = run_demo_scenario(obs=bus, **DEMO_KWARGS)
    return bus, registry, scenario, bad_asn


@pytest.fixture(scope="module")
def repaired_timeline(observed_demo):
    bus, _registry, _scenario, _bad_asn = observed_demo
    timelines = assemble_timelines(bus.events())
    repaired = [tl for tl in timelines if tl.final_state == "unpoisoned"]
    assert repaired, "demo should complete at least one full repair"
    return repaired[0]


class TestEndToEndTimeline:
    def test_full_lifecycle_phases(self, repaired_timeline):
        names = repaired_timeline.phase_names()
        for phase in (
            "detection", "isolation", "poison",
            "verification", "repair-detection", "unpoison",
        ):
            assert phase in names, f"missing {phase} in {names}"
        # Spans are ordered by onset.
        assert names.index("detection") < names.index("isolation")
        assert names.index("isolation") < names.index("poison")

    def test_convergence_child_span(self, repaired_timeline):
        poison = repaired_timeline.span("poison")
        children = [c.name for c in poison.children]
        assert "convergence" in children
        convergence = poison.children[children.index("convergence")]
        assert convergence.duration > 0
        assert convergence.detail["seconds"] == pytest.approx(
            convergence.duration
        )

    def test_poison_blames_injected_asn(
        self, observed_demo, repaired_timeline
    ):
        _bus, _registry, _scenario, bad_asn = observed_demo
        assert repaired_timeline.span("poison").detail["asn"] == bad_asn
        assert (
            repaired_timeline.span("isolation").detail["blamed_asn"]
            == bad_asn
        )

    def test_causal_bgp_references(self, repaired_timeline):
        poison = repaired_timeline.span("poison")
        assert poison.bgp_updates > 0
        lo, hi = poison.seq_range
        assert lo <= hi
        assert len(poison.bgp_update_seqs) <= poison.bgp_updates

    def test_detection_window_matches_outage(self, repaired_timeline):
        detection = repaired_timeline.span("detection")
        assert detection.start == repaired_timeline.outage_start
        assert detection.end > detection.start

    def test_render_mentions_every_phase(self, repaired_timeline):
        text = render_timeline(repaired_timeline)
        assert "final state: unpoisoned" in text
        for phase in ("detection", "poison", "convergence", "unpoison"):
            assert phase in text

    def test_assembly_is_pure_over_serialized_events(self, observed_demo):
        bus, _registry, _scenario, _bad_asn = observed_demo
        direct = render_timelines(assemble_timelines(bus.events()))
        replayed = render_timelines(
            assemble_timelines(
                Event.from_json(json.loads(e.canonical()))
                for e in bus.events()
            )
        )
        assert replayed == direct

    def test_event_stream_covers_all_layers(self, observed_demo):
        bus, _registry, _scenario, _bad_asn = observed_demo
        components = {e.component for e in bus.events()}
        for component in (
            "bgp.engine", "control.lifeguard", "control.guard",
            "dataplane.prober", "measure.monitor", "isolation.isolator",
        ):
            assert component in components

    def test_metrics_registry_saw_events_and_convergence(
        self, observed_demo
    ):
        _bus, registry, _scenario, _bad_asn = observed_demo
        counters = registry.counter_values()
        assert counters["obs.events.control.state"] > 0
        assert counters["obs.events.probe.ping"] > 0
        totals = registry.histogram_totals()
        assert totals["repair.convergence_seconds"] > 0


class TestAssemblyFromSyntheticEvents:
    def _event(self, seq, t, kind, subject, **fields):
        return Event(
            seq=seq, t=t, kind=kind, component="control.lifeguard",
            subject=subject, fields=fields,
        )

    def test_rollback_and_not_poisoned(self):
        subject = "origin|1.2.3.4|100.0"
        events = [
            self._event(0, 130.0, "control.observed", subject,
                        detected=130.0),
            self._event(1, 150.0, "control.poison", subject, asn=7),
            self._event(2, 200.0, "control.rollback", subject, asn=7,
                        reason="ineffective", failures=1),
            self._event(3, 210.0, "control.state", subject,
                        state="not-poisoned", reason="breaker open"),
        ]
        (timeline,) = assemble_timelines(events)
        assert timeline.final_state == "not-poisoned"
        rollback = timeline.span("rollback")
        assert rollback.detail["reason"] == "ineffective"
        assert any("gave up" in note for note in timeline.notes)

    def test_unrelated_events_are_ignored(self):
        events = [
            Event(seq=0, t=1.0, kind="probe.ping",
                  component="dataplane.prober", subject="vp|dst"),
            Event(seq=1, t=2.0, kind="control.observed",
                  component="control.lifeguard", subject="not-a-key"),
        ]
        assert assemble_timelines(events) == []

    def test_empty_render(self):
        assert "no repair activity" in render_timelines([])

    def test_span_helpers(self):
        span = Span(name="x", start=1.0, end=3.5)
        assert span.duration == 2.5
        assert span.seq_range is None
        span.bgp_update_seqs = [4, 9]
        assert span.seq_range == (4, 9)
