"""Affected-user-minutes accounting, crash recovery, and the CI smoke.

Three layers under test:

* the :class:`~repro.traffic.impact.ImpactLedger` itself — flow
  classification against failures, left-Riemann integration, and the
  journal round-trip: a ledger restored mid-stream from ``state_json``
  must continue byte-identically with the original;
* the end-to-end impact study behind ``repro impact --check`` — user
  pain accrues before the repair lands and decays monotonically to zero
  after (the CI smoke assertions), swept over ``REPRO_CHAOS_SEEDS``;
* the service integration — two crash-and-recover service runs with the
  same seed stay byte-identical (event-bus digest) with the traffic
  ledger journaling samples every round, and the recovered report
  carries identical impact accumulators.
"""

import os

import pytest

from repro.cli import main
from repro.control.journal import RepairJournal
from repro.dataplane.failures import ASForwardingFailure, FailureSet
from repro.dataplane.fib import build_fibs
from repro.experiments.impact import run_impact_study
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.service import LifeguardService, ServiceConfig
from repro.traffic import (
    ImpactLedger,
    TrafficConfig,
    build_traffic_matrix,
    impact_key,
)
from repro.workloads.outages import OutageArrivalConfig
from repro.workloads.scenarios import build_deployment

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "3,5,7").split(",")
)


def _transit_asn(graph, matrix, fibs):
    """A transit AS that actually carries some flow's first hop."""
    stubs = set(graph.stubs())
    for flow in matrix.flows:
        hop = fibs.next_hop_as(flow.src_asn, flow.dst_address)
        if hop is not None and hop >= 0 and hop not in stubs:
            return hop
    raise AssertionError("no transit next hop found")


class TestImpactLedger:
    @pytest.fixture()
    def setting(self, small_internet):
        graph, _topo, engine = small_internet
        fibs = build_fibs(engine)
        matrix = build_traffic_matrix(
            graph, seed=3, config=TrafficConfig(total_users=50_000)
        )
        return graph, fibs, matrix

    def test_healthy_plane_has_no_affected_users(self, setting):
        _graph, fibs, matrix = setting
        ledger = ImpactLedger(matrix)
        ledger.prime(fibs)
        sample = ledger.observe(30.0, fibs, FailureSet())
        assert sample.affected_users == 0
        assert sample.by_key == {}
        assert ledger.user_minutes == 0.0

    def test_failure_strands_users_and_attributes_them(self, setting):
        graph, fibs, matrix = setting
        bad = _transit_asn(graph, matrix, fibs)
        failure = ASForwardingFailure(asn=bad, start=0.0, end=600.0)
        failures = FailureSet([failure])
        ledger = ImpactLedger(matrix)
        ledger.prime(fibs)
        first = ledger.observe(30.0, fibs, failures)
        assert first.affected_users > 0
        assert first.by_key == {impact_key(failure): first.affected_users}
        # One more minute of the same outage integrates exactly
        # affected_users user-minutes.
        ledger.observe(90.0, fibs, failures)
        assert ledger.user_minutes == pytest.approx(
            first.affected_users * 1.0
        )
        # After the window closes the users come back.
        done = ledger.observe(660.0, fibs, failures)
        assert done.affected_users == 0
        assert ledger.peak_affected == first.affected_users

    def test_integration_is_left_riemann(self, setting):
        graph, fibs, matrix = setting
        bad = _transit_asn(graph, matrix, fibs)
        failures = FailureSet(
            [ASForwardingFailure(asn=bad, start=0.0, end=10_000.0)]
        )
        ledger = ImpactLedger(matrix)
        ledger.prime(fibs)
        a = ledger.observe(30.0, fibs, failures)
        before = ledger.user_minutes
        ledger.observe(150.0, fibs, failures)
        assert ledger.user_minutes - before == pytest.approx(
            a.affected_users * 2.0
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_restore_midstream_is_byte_identical(self, setting, seed):
        graph, fibs, matrix = setting
        bad = _transit_asn(graph, matrix, fibs)
        failures = FailureSet(
            [
                ASForwardingFailure(
                    asn=bad, start=100.0 + seed, end=400.0
                )
            ]
        )
        original = ImpactLedger(matrix)
        original.prime(fibs)
        times = [30.0 * i for i in range(1, 20)]
        cut = len(times) // 2
        for t in times[:cut]:
            original.observe(t, fibs, failures)
        # Crash: a fresh ledger over the deterministically rebuilt
        # matrix adopts the last journaled accumulators.
        snapshot = original.state_json()
        recovered = ImpactLedger(matrix)
        recovered.restore_state(snapshot)
        assert recovered.state_json() == snapshot
        for t in times[cut:]:
            a = original.observe(t, fibs, failures)
            b = recovered.observe(t, fibs, failures)
            assert (a.affected_users, a.by_key) == (
                b.affected_users,
                b.by_key,
            )
            assert original.state_json() == recovered.state_json()


class TestImpactStudy:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_smoke_invariants(self, seed):
        study, matrix = run_impact_study(scale="tiny", seed=seed)
        assert study.users_total == matrix.total_users > 0
        assert study.flows == len(matrix.flows)
        # The CI smoke assertions behind `repro impact --check`.
        assert study.repair_time is not None
        assert study.nonzero_before_repair()
        assert study.monotone_after_repair()
        assert study.final_affected_users == 0
        assert study.peak_users_affected > 0
        assert (
            study.affected_user_minutes
            >= study.user_minutes_before_repair
            > 0.0
        )

    def test_same_seed_studies_agree(self):
        a, _ = run_impact_study(scale="tiny", seed=SEEDS[0])
        b, _ = run_impact_study(scale="tiny", seed=SEEDS[0])
        assert a.affected_user_minutes == b.affected_user_minutes
        assert [
            (s.t, s.affected_users, s.by_key) for s in a.samples
        ] == [(s.t, s.affected_users, s.by_key) for s in b.samples]


def _run_service(seed, journal_path, crash_at=None):
    """One tiny-scale service run with the traffic ledger attached."""
    obs = EventBus(metrics=MetricsRegistry())
    journal = RepairJournal(journal_path)
    scenario = build_deployment(
        scale="tiny", seed=seed, obs=obs, journal=journal
    )
    config = ServiceConfig(
        duration=3600.0,
        arrivals=OutageArrivalConfig(
            first_arrival=1000.0, spacing=900.0, duration=3600.0
        ),
        seed=seed,
        drain=7200.0,
        crash_at=crash_at,
        traffic=TrafficConfig(total_users=100_000),
    )
    service = LifeguardService(scenario, config, obs=obs)
    report = service.run()
    journal.close()
    return report


class TestServiceIntegration:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_recover_is_byte_identical(self, seed, tmp_path):
        first = _run_service(
            seed, str(tmp_path / "a.jsonl"), crash_at=2500.0
        )
        second = _run_service(
            seed, str(tmp_path / "b.jsonl"), crash_at=2500.0
        )
        assert first.crashes == 1
        assert first.digest == second.digest
        assert first.users_total == 100_000
        assert first.affected_user_minutes == (
            second.affected_user_minutes
        )
        assert first.peak_users_affected == second.peak_users_affected

    def test_report_carries_impact_fields(self, tmp_path):
        report = _run_service(SEEDS[0], str(tmp_path / "a.jsonl"))
        doc = report.as_dict()
        for key in (
            "users_total",
            "users_affected",
            "peak_users_affected",
            "affected_user_minutes",
        ):
            assert key in doc
        assert doc["users_total"] == 100_000


class TestImpactCLI:
    def test_check_mode_passes(self, capsys):
        assert (
            main(
                [
                    "--seed",
                    str(SEEDS[0]),
                    "impact",
                    "--scale",
                    "tiny",
                    "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "user-minutes before repair" in out
