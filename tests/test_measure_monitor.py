"""Tests for ping monitoring, the atlas, and the responsiveness DB."""

import pytest

from repro.dataplane.failures import ASForwardingFailure
from repro.dataplane.probes import Prober
from repro.errors import MeasurementError
from repro.measure.atlas import AtlasRefresher, PathAtlas
from repro.measure.monitor import (
    CONSECUTIVE_FAILURES_FOR_OUTAGE,
    MonitorEvent,
    PingMonitor,
)
from repro.measure.responsiveness import ResponsivenessDB
from repro.measure.vantage import VantageSet
from repro.topology.generate import prefix_for_asn


@pytest.fixture()
def rig(small_internet, dataplane):
    graph, topo, _engine = small_internet
    prober = Prober(dataplane)
    vps = VantageSet(topo)
    stubs = [n.asn for n in graph.nodes() if n.tier == 3]
    for i, asn in enumerate(stubs[:3]):
        vps.add(f"vp{i}", topo.routers_of(asn)[0])
    target = topo.router(topo.routers_of(stubs[8])[0]).address
    return graph, topo, prober, vps, target


class TestVantageSet:
    def test_add_and_get(self, rig):
        _g, topo, _p, vps, _t = rig
        assert vps.get("vp0").rid == vps.get("vp0").rid
        assert len(vps) == 3
        assert "vp1" in vps

    def test_duplicate_name_rejected(self, rig):
        _g, topo, _p, vps, _t = rig
        with pytest.raises(MeasurementError):
            vps.add("vp0", vps.get("vp1").rid)

    def test_others_excludes_self(self, rig):
        _g, _t2, _p, vps, _t = rig
        others = vps.others("vp0")
        assert all(vp.name != "vp0" for vp in others)
        assert len(others) == 2


class TestResponsivenessDB:
    def test_ever_responded(self):
        db = ResponsivenessDB()
        db.record("10.0.0.1", True, time=5.0)
        assert db.ever_responded("10.0.0.1")
        assert db.informative_silence("10.0.0.1")
        assert db.last_response_time("10.0.0.1") == 5.0

    def test_configured_silent_needs_attempts(self):
        db = ResponsivenessDB()
        db.record("10.0.0.2", False)
        assert not db.configured_silent("10.0.0.2")  # only one attempt
        db.record("10.0.0.2", False)
        db.record("10.0.0.2", False)
        assert db.configured_silent("10.0.0.2")

    def test_one_success_clears_silent_verdict(self):
        db = ResponsivenessDB()
        for _ in range(5):
            db.record("10.0.0.3", False)
        db.record("10.0.0.3", True)
        assert not db.configured_silent("10.0.0.3")

    def test_unknown_address_not_silent(self):
        db = ResponsivenessDB()
        assert not db.configured_silent("10.9.9.9")
        assert not db.ever_responded("10.9.9.9")


class TestPingMonitor:
    def test_healthy_rounds_report_ok(self, rig):
        _g, _topo, prober, vps, target = rig
        monitor = PingMonitor(prober, vps, [target])
        events = monitor.run_round(now=0.0)
        assert all(e is MonitorEvent.OK for e in events.values())
        assert not monitor.outages

    def test_outage_detection_after_threshold(self, rig):
        graph, topo, prober, vps, target = rig
        target_asn = topo.router_by_address(target).asn
        monitor = PingMonitor(prober, vps, [target])
        monitor.run_round(now=0.0)
        # Break a transit AS on vp0's path toward the target (a failure
        # inside the destination AS itself would be the operator's own
        # problem and is invisible at the ingress=destination router).
        walk = prober.dataplane.forward(vps.get("vp0").rid, target)
        transit_asn = walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=transit_asn, toward=prefix_for_asn(target_asn),
                start=10.0,
            )
        )
        events_seen = []
        for round_index in range(CONSECUTIVE_FAILURES_FOR_OUTAGE + 1):
            now = 30.0 * (round_index + 1)
            events = monitor.run_round(now=now)
            events_seen.append(events[("vp0", target.value)])
        assert MonitorEvent.OUTAGE_STARTED in events_seen
        outage = monitor.outages[0]
        assert outage.start == 30.0  # first failed round
        assert outage.end is None

    def test_outage_end_recorded(self, rig):
        graph, topo, prober, vps, target = rig
        target_asn = topo.router_by_address(target).asn
        monitor = PingMonitor(prober, vps, [target])
        walk = prober.dataplane.forward(vps.get("vp0").rid, target)
        transit_asn = walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=transit_asn,
                toward=prefix_for_asn(target_asn),
                start=0.0,
                end=200.0,
            )
        )
        for round_index in range(10):
            monitor.run_round(now=30.0 * round_index)
        assert monitor.outages
        outage = monitor.outages[0]
        assert outage.end is not None
        assert outage.duration >= 90.0

    def test_min_detectable_duration_is_90s(self, rig):
        _g, _topo, prober, vps, target = rig
        monitor = PingMonitor(prober, vps, [target])
        # Failure spanning only two rounds: never becomes an outage.
        target_asn = prober.dataplane.topo.router_by_address(target).asn
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=target_asn,
                toward=prefix_for_asn(target_asn),
                start=25.0,
                end=70.0,
            )
        )
        for round_index in range(6):
            monitor.run_round(now=30.0 * round_index)
        assert not monitor.outages


class TestAtlas:
    def test_refresh_populates_both_directions(self, rig):
        _g, topo, prober, vps, target = rig
        atlas = PathAtlas()
        refresher = AtlasRefresher(prober, vps, atlas)
        stats = refresher.refresh_all([target], now=0.0)
        assert stats.paths_refreshed == len(vps)
        for vp in vps:
            assert atlas.latest_forward(vp.name, target) is not None
            assert atlas.latest_reverse(vp.name, target) is not None

    def test_historical_ordering(self, rig):
        _g, _topo, prober, vps, target = rig
        atlas = PathAtlas()
        refresher = AtlasRefresher(prober, vps, atlas)
        refresher.refresh_pair(vps.get("vp0"), target, now=0.0)
        refresher.refresh_pair(vps.get("vp0"), target, now=600.0)
        history = atlas.reverse_history("vp0", target)
        assert [e.time for e in history] == [600.0, 0.0]
        assert atlas.latest_reverse("vp0", target, before=300.0).time == 0.0

    def test_amortized_refresh_cheaper_than_fresh(self, rig):
        _g, _topo, prober, vps, target = rig
        atlas = PathAtlas()
        refresher = AtlasRefresher(prober, vps, atlas)
        first = refresher.refresh_pair(vps.get("vp0"), target, now=0.0)
        second = refresher.refresh_pair(vps.get("vp0"), target, now=600.0)
        assert second.option_probes < first.option_probes

    def test_all_known_hops_dedup(self, rig):
        _g, _topo, prober, vps, target = rig
        atlas = PathAtlas()
        refresher = AtlasRefresher(prober, vps, atlas)
        refresher.refresh_pair(vps.get("vp0"), target, now=0.0)
        refresher.refresh_pair(vps.get("vp0"), target, now=600.0)
        hops = atlas.all_known_hops("vp0", target)
        assert len(hops) == len({h.value for h in hops})
