"""End-to-end test: LIFEGUARD remediating with AVOID_PROBLEM instead of
poisoning (the idealized mode, LifeguardConfig.use_avoid_problem)."""

import pytest

from repro.control.lifeguard import LifeguardConfig, RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.workloads.scenarios import build_deployment


@pytest.fixture(scope="module")
def scenario():
    return build_deployment(
        scale="tiny", seed=5, num_providers=2,
        lifeguard_config=LifeguardConfig(use_avoid_problem=True),
    )


def _reverse_transit(scenario, target):
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    return next(
        a
        for a in walk.as_level_hops(topo)[1:-1]
        if a != scenario.origin_asn
    )


class TestAvoidProblemMode:
    def test_repair_cycle_with_avoid_problem(self, scenario):
        lifeguard = scenario.lifeguard
        target = scenario.targets[0]
        bad_asn = _reverse_transit(scenario, target)
        sentinel = lifeguard.sentinel_manager.sentinel

        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=sentinel, start=1000.0, end=8200.0
            )
        )
        lifeguard.run(start=30.0, end=9600.0)

        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        # The outage was repaired via the avoid hint...
        assert record.outage.end is not None
        assert record.state is RepairState.UNPOISONED
        # ...and the announcement log shows the primitive, not a poison.
        actions = [entry[1] for entry in lifeguard.origin.log]
        assert any("avoid-problem" in action for action in actions)
        assert not any(
            action.startswith("poison") for action in actions
        )

    def test_faulty_as_keeps_a_route_during_remediation(self, scenario):
        """Unlike poisoning, the primitive never cuts the faulty AS off
        (the Backup Property), so no sentinel fallback is needed for it."""
        lifeguard = scenario.lifeguard
        engine = scenario.engine
        record = lifeguard.poisoned_records()[0]
        # The repair is over by now; re-apply the hint and check.
        lifeguard.origin.avoid_problem([record.poisoned_asn])
        engine.run()
        assert engine.as_path(
            record.poisoned_asn, scenario.production_prefix
        ) is not None
        lifeguard.origin.unpoison()
        engine.run()
