"""Integration tests for direction isolation and the full isolator."""

import pytest

from repro.dataplane.failures import ASForwardingFailure
from repro.dataplane.probes import Prober
from repro.isolation.direction import DirectionIsolator, FailureDirection
from repro.isolation.horizon import HopStatus, ReachabilityHorizon
from repro.isolation.isolator import FailureIsolator
from repro.measure.atlas import AtlasRefresher, PathAtlas
from repro.measure.responsiveness import ResponsivenessDB
from repro.measure.vantage import VantageSet
from repro.topology.generate import prefix_for_asn


@pytest.fixture()
def deployment(small_internet, dataplane):
    """A LIFEGUARD-style measurement deployment: VPs, atlas, isolator."""
    graph, topo, _engine = small_internet
    prober = Prober(dataplane)
    vps = VantageSet(topo)
    stubs = [n.asn for n in graph.nodes() if n.tier == 3]
    for index, asn in enumerate(stubs[:6]):
        vps.add(f"vp{index}", topo.routers_of(asn)[0])
    target_asn = stubs[10]
    target = topo.router(topo.routers_of(target_asn)[0]).address
    atlas = PathAtlas()
    responsiveness = ResponsivenessDB()
    refresher = AtlasRefresher(prober, vps, atlas, responsiveness)
    refresher.refresh_all([target], now=0.0)
    isolator = FailureIsolator(prober, vps, atlas, responsiveness)
    return {
        "graph": graph,
        "topo": topo,
        "prober": prober,
        "vps": vps,
        "target": target,
        "target_asn": target_asn,
        "atlas": atlas,
        "isolator": isolator,
    }


def _reverse_transit(deployment, vp_name="vp0"):
    """A transit AS on the reverse path target -> vp0."""
    topo = deployment["topo"]
    prober = deployment["prober"]
    vp = deployment["vps"].get(vp_name)
    target_rid = prober.dataplane.host_router(deployment["target"])
    walk = prober.dataplane.forward(target_rid, topo.router(vp.rid).address)
    assert walk.delivered
    as_hops = walk.as_level_hops(topo)
    return as_hops[1]  # first transit AS past the target's own


def _forward_transit(deployment, vp_name="vp0"):
    topo = deployment["topo"]
    prober = deployment["prober"]
    vp = deployment["vps"].get(vp_name)
    walk = prober.dataplane.forward(vp.rid, deployment["target"])
    assert walk.delivered
    return walk.as_level_hops(topo)[1]


class TestDirectionIsolation:
    def test_reverse_failure_classified(self, deployment):
        topo = deployment["topo"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        isolator = DirectionIsolator(deployment["prober"])
        helpers = [o.rid for o in deployment["vps"].others("vp0")]
        direction, evidence = isolator.classify(
            vp.rid, deployment["target"], helpers
        )
        assert direction is FailureDirection.REVERSE
        assert evidence.forward_works

    def test_forward_failure_classified(self, deployment):
        vp = deployment["vps"].get("vp0")
        bad_asn = _forward_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=prefix_for_asn(deployment["target_asn"]),
            )
        )
        isolator = DirectionIsolator(deployment["prober"])
        helpers = [o.rid for o in deployment["vps"].others("vp0")]
        direction, evidence = isolator.classify(
            vp.rid, deployment["target"], helpers
        )
        # The same AS may sit on other VPs' paths too; the failure is
        # forward from vp0's perspective as long as some helper reaches
        # the target and relays spoofed replies.
        assert direction in (
            FailureDirection.FORWARD,
            FailureDirection.BIDIRECTIONAL,
        )

    def test_healthy_path_is_unknown(self, deployment):
        vp = deployment["vps"].get("vp0")
        isolator = DirectionIsolator(deployment["prober"])
        helpers = [o.rid for o in deployment["vps"].others("vp0")]
        direction, _ = isolator.classify(
            vp.rid, deployment["target"], helpers
        )
        assert direction is FailureDirection.UNKNOWN


class TestReachabilityHorizon:
    def test_horizon_splits_path(self, deployment):
        topo = deployment["topo"]
        prober = deployment["prober"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        target_rid = prober.dataplane.host_router(deployment["target"])
        truth = prober.dataplane.forward(
            target_rid, topo.router(vp.rid).address
        )
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        horizon = ReachabilityHorizon(prober)
        hops = [topo.router(rid).address for rid in truth.hops]
        result = horizon.test_path(
            vp.rid, hops, skip_source_as=topo.router(vp.rid).asn
        )
        assert result.suspect is not None
        assert result.suspect.asn == bad_asn

    def test_configured_silent_excluded(self, deployment):
        prober = deployment["prober"]
        responsiveness = ResponsivenessDB()
        some_hop = deployment["target"]
        for _ in range(3):
            responsiveness.record(some_hop, responded=False)
        horizon = ReachabilityHorizon(prober, responsiveness)
        vp = deployment["vps"].get("vp0")
        result = horizon.test_path(vp.rid, [some_hop])
        assert result.verdicts[0].status is HopStatus.EXCLUDED


class TestFullIsolation:
    def test_reverse_failure_blamed_correctly(self, deployment):
        topo = deployment["topo"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        result = deployment["isolator"].isolate(
            "vp0", deployment["target"], now=100.0
        )
        assert result.direction is FailureDirection.REVERSE
        assert result.blamed_asn == bad_asn
        assert result.probes_used > 0
        assert result.elapsed_seconds > 0

    def test_reverse_failure_differs_from_traceroute(self, deployment):
        """Traceroute alone blames a forward-path AS; LIFEGUARD finds the
        reverse-path culprit (the paper's Fig. 4 situation)."""
        topo = deployment["topo"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        result = deployment["isolator"].isolate(
            "vp0", deployment["target"], now=100.0
        )
        if result.traceroute_verdict is not None:
            # Whenever traceroute produced a verdict at all, it may point
            # at the wrong AS; LIFEGUARD should still point at the right
            # one (asserted above). Record the comparison explicitly.
            assert result.blamed_asn == bad_asn

    def test_forward_failure_blamed(self, deployment):
        bad_asn = _forward_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=prefix_for_asn(deployment["target_asn"]),
            )
        )
        result = deployment["isolator"].isolate(
            "vp0", deployment["target"], now=100.0
        )
        assert result.blamed_asn == bad_asn

    def test_working_path_measured_for_reverse_failure(self, deployment):
        topo = deployment["topo"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        result = deployment["isolator"].isolate(
            "vp0", deployment["target"], now=100.0
        )
        # The forward direction works, so the spoofed traceroute should
        # have captured it.
        assert result.working_path

    def test_isolation_without_atlas_notes_it(self, deployment):
        topo = deployment["topo"]
        vp = deployment["vps"].get("vp0")
        bad_asn = _reverse_transit(deployment)
        deployment["prober"].dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn, toward=prefix_for_asn(topo.router(vp.rid).asn)
            )
        )
        from repro.measure.atlas import PathAtlas

        bare = FailureIsolator(
            deployment["prober"], deployment["vps"], PathAtlas()
        )
        result = bare.isolate("vp0", deployment["target"], now=100.0)
        assert result.blamed_asn is None
        assert any("no historical reverse path" in n for n in result.notes)
