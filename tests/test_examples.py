"""The example scripts must run end-to-end (they double as system tests)."""

import os
import runpy


EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _run(name):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    runpy.run_path(path, run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "repair timeline" in out
        assert "unpoisoned" in out

    def test_failure_isolation_demo(self, capsys):
        _run("failure_isolation_demo.py")
        out = capsys.readouterr().out
        assert "correct: the injected failure" in out

    def test_selective_poisoning(self, capsys):
        _run("selective_poisoning.py")
        out = capsys.readouterr().out
        assert "selective poisoning shifted the target" in out

    def test_ec2_outage_study(self, capsys):
        _run("ec2_outage_study.py")
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Fig. 5" in out

    def test_case_study_taiwan(self, capsys):
        _run("case_study_taiwan.py")
        out = capsys.readouterr().out
        assert "repaired the outage" in out

    def test_chaos_drill(self, capsys):
        _run("chaos_drill.py")
        out = capsys.readouterr().out
        assert "chaos fault report" in out
        assert "false poisons: 0" in out
        assert "repaired and unpoisoned despite the chaos." in out

    def test_reverse_traceroute_demo(self, capsys):
        _run("reverse_traceroute_demo.py")
        out = capsys.readouterr().out
        assert "reverse path" in out
        assert "measurement returns None" in out
