"""Replay every committed fuzz-corpus entry on both backends.

Each ``tests/corpus/fuzz/*.json`` file pins one fuzzer finding: a fixed
solver-vs-engine divergence that must stay equal, or a config the
solver gate must keep rejecting.  Replays are single small cases, so
this stays tier-1 fast.
"""

import os

import pytest

from repro.fuzz.case import CASE_SCHEMA
from repro.fuzz.corpus import load_entries, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus", "fuzz")

ENTRIES = load_entries(CORPUS_DIR)


def test_corpus_is_committed():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,entry",
    ENTRIES,
    ids=[os.path.basename(path) for path, _ in ENTRIES],
)
def test_corpus_entry_replays(path, entry):
    assert entry.get("schema") == CASE_SCHEMA
    assert entry.get("note"), f"{path}: every pin documents what it pins"
    ok, detail = replay_entry(entry)
    assert ok, f"{path}: {detail}"
