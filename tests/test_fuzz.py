"""The differential fuzzer: generator, executor, shrinker, campaign."""

import json
import os

import pytest

from repro.cli import main
from repro.fuzz import (
    ActionSpec,
    FuzzCase,
    OrigSpec,
    VERDICT_DIVERGENCE,
    VERDICT_EQUAL,
    VERDICT_GATE_REJECTED,
    generate_case,
    run_campaign,
    run_case,
    shrink_case,
    single_reductions,
)
from repro.fuzz.corpus import load_entries, replay_entry
from repro.runner.baseline import converged_internet
from repro.runner.stats import RunStats


class TestGenerator:
    def test_same_seed_same_case(self):
        a = generate_case(0, 5, "small")
        b = generate_case(0, 5, "small")
        assert a.digest() == b.digest()

    def test_different_index_different_case(self):
        digests = {generate_case(0, i, "small").digest() for i in range(8)}
        assert len(digests) == 8

    def test_json_round_trip(self):
        for index in range(20):
            case = generate_case(3, index, "small")
            again = FuzzCase.from_json(
                json.loads(json.dumps(case.to_json()))
            )
            assert again.canonical() == case.canonical()

    def test_unknown_scale_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            generate_case(0, 0, "galactic")


class TestExecutor:
    def test_small_campaign_is_clean(self):
        report = run_campaign(
            seed=0, cases=40, scale="tiny", workers=1, shrink=False
        )
        assert report.ok
        assert report.equal + report.gate_rejected == 40
        assert report.equal > 0, "campaign must exercise the solver"
        assert report.gate_rejected > 0, (
            "campaign must exercise the gate budget"
        )

    def test_moas_is_gate_rejected(self):
        case = FuzzCase(
            seed=7,
            engine_seed=7,
            ases=[(1, 1), (2, 2), (3, 2)],
            links=[(2, 1, "provider"), (3, 1, "provider")],
            originations=[
                OrigSpec(2, "10.0.0.0/16"),
                OrigSpec(3, "10.0.0.0/16"),
            ],
        )
        result = run_case(case)
        assert result.verdict == VERDICT_GATE_REJECTED
        assert "multiple originations" in result.reason

    def test_med_survives_both_backends(self):
        case = FuzzCase(
            seed=11,
            engine_seed=11,
            ases=[(1, 1), (2, 2)],
            links=[(2, 1, "provider")],
            originations=[OrigSpec(2, "10.2.0.0/16", med=5)],
            actions=[
                ActionSpec(
                    op="announce", asn=2, prefix="10.2.0.0/16", med=7
                )
            ],
        )
        result = run_case(case)
        assert result.verdict == VERDICT_EQUAL, result.diff

    def test_injected_divergence_is_caught(self):
        # Index 1: a case whose perturbation script does not re-announce
        # the tampered prefix (an announce action would heal the
        # injected corruption and mask the divergence).
        case = generate_case(0, 1, "tiny")
        healthy = run_case(case)
        assert healthy.verdict == VERDICT_EQUAL
        broken = run_case(case, inject_divergence=True)
        assert broken.verdict == VERDICT_DIVERGENCE
        assert broken.diff


class TestDeltaArm:
    """The third differential arm: delta splice vs full event replay."""

    @staticmethod
    def _case(**overrides):
        kwargs = dict(
            seed=21,
            engine_seed=21,
            ases=[(1, 1), (2, 1), (3, 2), (4, 3)],
            links=[
                (1, 2, "peer"),
                (3, 1, "provider"),
                (3, 2, "provider"),
                (4, 3, "provider"),
            ],
            originations=[
                OrigSpec(1, "10.1.0.0/16"),
                OrigSpec(4, "10.4.0.0/16", path=(4, 4, 4)),
            ],
            actions=[
                ActionSpec(
                    op="announce",
                    asn=4,
                    prefix="10.4.0.0/16",
                    path=(4, 3, 4),
                ),
                ActionSpec(op="reset", asn=4, peer=3),
            ],
        )
        kwargs.update(overrides)
        return FuzzCase(**kwargs)

    def test_clean_case_runs_the_arm(self):
        stats = RunStats()
        result = run_case(self._case(), stats=stats)
        assert result.verdict == VERDICT_EQUAL
        assert result.delta_arm == "equal"
        assert stats.counters["fuzz.delta_arm_runs"] == 1
        assert stats.counters["solver.delta.applied"] == 2

    def test_fault_plan_keeps_the_arm_off(self):
        stats = RunStats()
        result = run_case(self._case(drop_rate=0.2), stats=stats)
        assert result.delta_arm is None
        assert "fuzz.delta_arm_runs" not in stats.counters

    def test_no_actions_keeps_the_arm_off(self):
        result = run_case(self._case(actions=[]))
        assert result.verdict == VERDICT_EQUAL
        assert result.delta_arm is None

    def test_unsupported_action_is_a_counted_skip(self):
        # A second AS announcing AS4's prefix is MOAS mid-script: the
        # event engine models it, the delta gate must refuse and the
        # arm records the skip instead of failing the case.
        stats = RunStats()
        case = self._case(
            actions=[
                ActionSpec(
                    op="announce", asn=1, prefix="10.4.0.0/16"
                )
            ]
        )
        result = run_case(case, stats=stats)
        assert result.verdict == VERDICT_EQUAL
        assert result.delta_arm.startswith("skipped:")
        assert "multiple originations" in result.delta_arm
        assert stats.counters["fuzz.delta_arm_skips"] == 1

    def test_delta_divergence_is_attributed(self, monkeypatch):
        import repro.fuzz.executor as executor

        real = executor.apply_delta

        def corrupting(engine, changes, stats=None):
            out = real(engine, changes, stats=stats)
            for speaker in engine.speakers.values():
                loc = speaker.table._loc
                if loc:
                    loc.pop(next(iter(loc)))
                    break
            return out

        monkeypatch.setattr(executor, "apply_delta", corrupting)
        result = run_case(self._case())
        assert result.verdict == VERDICT_DIVERGENCE
        assert result.crash_side == "delta"
        assert result.delta_arm == "divergence"
        assert result.diff

    def test_delta_crash_is_attributed(self, monkeypatch):
        import repro.fuzz.executor as executor

        def boom(engine, changes, stats=None):
            raise RuntimeError("splice exploded")

        monkeypatch.setattr(executor, "apply_delta", boom)
        result = run_case(self._case())
        assert result.verdict == "crash"
        assert result.crash_side == "delta"
        assert "splice exploded" in result.reason


class TestShrinker:
    @staticmethod
    def _failing_case():
        case = generate_case(0, 1, "small")
        result = run_case(case, inject_divergence=True)
        assert result.failed
        return case, result.signature()

    def test_shrink_is_deterministic(self):
        case, signature = self._failing_case()

        def still_fails(candidate):
            result = run_case(candidate, inject_divergence=True)
            return result.failed and result.signature() == signature

        first, _ = shrink_case(case, still_fails, budget=2000)
        second, _ = shrink_case(case, still_fails, budget=2000)
        assert first.digest() == second.digest()

    def test_shrunk_case_is_one_minimal(self):
        case, signature = self._failing_case()

        def still_fails(candidate):
            result = run_case(candidate, inject_divergence=True)
            return result.failed and result.signature() == signature

        shrunk, _ = shrink_case(case, still_fails, budget=2000)
        assert still_fails(shrunk)
        for label, candidate in single_reductions(shrunk):
            assert not still_fails(candidate), (
                f"reduction {label!r} still fails: not 1-minimal"
            )


class TestCampaign:
    def test_worker_count_invariance(self):
        serial = run_campaign(
            seed=4, cases=24, scale="tiny", workers=1, shrink=False
        )
        pooled = run_campaign(
            seed=4, cases=24, scale="tiny", workers=2, shrink=False
        )
        assert serial.as_dict() == pooled.as_dict()

    def test_inject_end_to_end(self, tmp_path):
        corpus = tmp_path / "corpus"
        stats = RunStats()
        report = run_campaign(
            seed=0,
            cases=2,
            scale="small",
            workers=1,
            shrink=True,
            corpus_dir=str(corpus),
            inject_divergence=True,
            stats=stats,
        )
        assert not report.ok
        assert report.divergences == 2
        assert stats.counters["fuzz.divergence"] == 2
        assert stats.counters["fuzz.shrink_runs"] > 0
        for failure in report.failures:
            assert len(failure.shrunk.ases) <= 8
            assert failure.corpus_path is not None
            assert os.path.exists(failure.corpus_path)
        entries = load_entries(str(corpus))
        assert len(entries) == 2
        # The injected corruption is gone on a plain replay, so the
        # written expect="equal" pins pass against the healthy tree.
        for _path, entry in entries:
            ok, detail = replay_entry(entry)
            assert ok, detail

    def test_gate_budget_counters(self):
        stats = RunStats()
        report = run_campaign(
            seed=0, cases=40, scale="tiny", workers=1, shrink=False,
            stats=stats,
        )
        assert report.gate_reasons
        for slug, count in report.gate_reasons.items():
            assert stats.counters[f"fuzz.gate_rejections.{slug}"] == count


class TestBaselineGateCounter:
    def test_auto_fallback_counts_reason_slug(self, monkeypatch):
        monkeypatch.setattr(
            "repro.runner.baseline.solver_unsupported_reason",
            lambda engine, originations: "AS1: sibling link",
        )
        stats = RunStats()
        converged_internet("tiny", 2, mode="auto", cache=None, stats=stats)
        assert stats.counters["solver.gate_rejections.sibling_link"] == 1


class TestFuzzCLI:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["fuzz", "--cases", "10", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Differential fuzz" in out

    def test_divergence_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--cases",
                "2",
                "--scale",
                "tiny",
                "--inject-divergence",
                "--corpus-dir",
                str(tmp_path / "corpus"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL case 1" in captured.err
        assert list((tmp_path / "corpus").glob("fuzz-*.json"))
