"""The gravity-model traffic matrix and its determinism contract.

The matrix is the denominator of every user-impact number, so two
properties are load-bearing: the same (graph, seed, config) must yield a
byte-identical matrix at **any** worker count (the repo-wide
content-derived seeding discipline), and the integer user allocation
must conserve the configured total exactly — largest-remainder rounding,
no drift.  Seeds come from ``REPRO_CHAOS_SEEDS`` so CI sweeps a matrix.
"""

import os

import pytest

from repro.topology.generate import InternetShape, generate_internet
from repro.traffic.matrix import (
    TrafficConfig,
    _largest_remainder,
    build_traffic_matrix,
)

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "3,5,7").split(",")
)

SHAPE = InternetShape(num_tier1=2, num_tier2=6, num_stubs=14)


@pytest.fixture(scope="module")
def graph():
    return generate_internet(SHAPE, seed=7)


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_at_any_worker_count(self, graph, seed):
        serial = build_traffic_matrix(graph, seed=seed, workers=1)
        fanned = build_traffic_matrix(graph, seed=seed, workers=3)
        assert serial.digest() == fanned.digest()
        assert serial.flows == fanned.flows

    def test_different_seeds_differ(self, graph):
        a = build_traffic_matrix(graph, seed=SEEDS[0])
        b = build_traffic_matrix(graph, seed=SEEDS[0] + 1)
        assert a.digest() != b.digest()

    def test_digest_is_content_derived(self, graph):
        # Two independent builds, not a cached object.
        a = build_traffic_matrix(graph, seed=11)
        b = build_traffic_matrix(graph, seed=11)
        assert a is not b
        assert a.digest() == b.digest()


class TestGravityModel:
    def test_total_users_conserved_exactly(self, graph):
        config = TrafficConfig(total_users=123_457, dests_per_src=5)
        matrix = build_traffic_matrix(graph, seed=3, config=config)
        assert matrix.total_users == config.total_users
        assert sum(f.users for f in matrix.flows) == config.total_users

    def test_sources_are_stub_ases_only(self, graph):
        matrix = build_traffic_matrix(graph, seed=3)
        stubs = set(graph.stubs())
        assert {f.src_asn for f in matrix.flows} <= stubs

    def test_no_self_traffic(self, graph):
        matrix = build_traffic_matrix(graph, seed=3)
        for flow in matrix.flows:
            origins = graph.node(flow.src_asn).prefixes
            assert flow.dst_prefix not in origins

    def test_destination_addresses_live_inside_their_prefix(self, graph):
        matrix = build_traffic_matrix(graph, seed=5)
        for flow in matrix.flows:
            assert flow.dst_address in flow.dst_prefix
            assert flow.users > 0

    def test_users_by_src_partitions_the_total(self, graph):
        config = TrafficConfig(total_users=40_000)
        matrix = build_traffic_matrix(graph, seed=7, config=config)
        assert sum(matrix.users_by_src().values()) == 40_000

    def test_users_toward_counts_prefix_hits(self, graph):
        matrix = build_traffic_matrix(graph, seed=7)
        prefix = matrix.flows[0].dst_prefix
        expected = sum(
            f.users for f in matrix.flows if f.dst_address in prefix
        )
        assert matrix.users_toward(prefix) == expected


class TestTrafficConfig:
    def test_from_env_reads_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAFFIC_USERS", "5000")
        monkeypatch.setenv("REPRO_TRAFFIC_DESTS", "3")
        cfg = TrafficConfig.from_env()
        assert cfg.total_users == 5000
        assert cfg.dests_per_src == 3

    def test_from_env_defaults_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRAFFIC_USERS", raising=False)
        monkeypatch.delenv("REPRO_TRAFFIC_DESTS", raising=False)
        cfg = TrafficConfig.from_env()
        assert cfg.total_users == 1_000_000
        assert cfg.dests_per_src == 8


class TestLargestRemainder:
    def test_conserves_the_total(self):
        shares = _largest_remainder(100, [1.0, 1.0, 1.0])
        assert sum(shares) == 100

    def test_proportional_and_tie_stable(self):
        assert _largest_remainder(10, [3.0, 1.0]) == [8, 2]
        # Equal weights: leftovers go to the earliest indices.
        assert _largest_remainder(5, [1.0, 1.0, 1.0]) == [2, 2, 1]

    def test_degenerate_inputs(self):
        assert _largest_remainder(0, [1.0]) == [0]
        assert _largest_remainder(10, []) == []
        assert _largest_remainder(10, [0.0, 0.0]) == [0, 0]
