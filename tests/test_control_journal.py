"""Unit tests for the write-ahead repair journal."""

import json

import pytest

from repro.control.journal import (
    JOURNAL_VERSION,
    RepairJournal,
    key_from_json,
    key_to_json,
    outage_key,
)
from repro.errors import ControlError

KEY = outage_key("origin", "0.6.0.1", 1020.0)


class TestOutageKey:
    def test_key_is_stable_across_equal_inputs(self):
        assert KEY == outage_key("origin", "0.6.0.1", 1020)

    def test_json_roundtrip(self):
        assert key_from_json(key_to_json(KEY)) == KEY


class TestInMemoryJournal:
    def test_append_returns_entry_with_version_and_time(self):
        journal = RepairJournal()
        entry = journal.append("poison", 1200.0, key=KEY, asn=7)
        assert entry["v"] == JOURNAL_VERSION
        assert entry["t"] == 1200.0
        assert entry["event"] == "poison"
        assert entry["asn"] == 7
        assert entry["outage"] == key_to_json(KEY)

    def test_none_fields_are_dropped(self):
        journal = RepairJournal()
        entry = journal.append("state", 0.0, key=KEY, reason=None, asn=7)
        assert "reason" not in entry
        assert entry["asn"] == 7

    def test_global_entries_have_no_outage(self):
        journal = RepairJournal()
        entry = journal.append("announce-baseline", 0.0)
        assert "outage" not in entry

    def test_of_event_and_for_outage_filters(self):
        journal = RepairJournal()
        other = outage_key("helper0", "0.9.0.1", 2000.0)
        journal.append("observed", 1020.0, key=KEY)
        journal.append("observed", 2000.0, key=other)
        journal.append("poison", 1300.0, key=KEY, asn=7)
        assert len(journal.of_event("observed")) == 2
        assert len(journal.for_outage(KEY)) == 2
        assert len(journal.for_outage(other)) == 1
        assert len(journal) == 3
        assert len(list(journal)) == 3


class TestPersistedJournal:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RepairJournal(path)
        journal.append("announce-baseline", 0.0)
        journal.append("poison", 1300.0, key=KEY, asn=7, control=["0.9.0.1"])
        journal.close()

        loaded = RepairJournal.load(path)
        assert loaded.entries == journal.entries

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RepairJournal(path)
        journal.append("poison", 1300.0, key=KEY, asn=7)
        journal.close()
        with open(path, encoding="utf-8") as handle:
            line = handle.readline().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ControlError, match="malformed"):
            RepairJournal.load(str(path))

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"v": 999, "t": 0.0, "event": "observed"}) + "\n"
        )
        with pytest.raises(ControlError, match="version"):
            RepairJournal.load(str(path))

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            json.dumps(
                {"v": JOURNAL_VERSION, "t": 0.0, "event": "observed"}
            )
            + "\n\n"
        )
        assert len(RepairJournal.load(str(path))) == 1


class TestBufferedFlushing:
    def test_flush_every_batches_and_exposes_lag(self, tmp_path):
        path = str(tmp_path / "buffered.jsonl")
        journal = RepairJournal(path, flush_every=3)
        journal.append("observed", 1.0, key=KEY)
        journal.append("observed", 2.0, key=KEY)
        assert journal.lag == 2
        assert journal.flushes == 0
        journal.append("observed", 3.0, key=KEY)
        assert journal.lag == 0
        assert journal.flushes == 1
        journal.append("observed", 4.0, key=KEY)
        journal.close()
        assert journal.lag == 0
        assert len(RepairJournal.load(path)) == 4

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ControlError, match="flush_every"):
            RepairJournal(flush_every=0)


def _finish(journal, key, t, state="unpoisoned"):
    """Journal a minimal terminal lifecycle for *key*."""
    journal.append("observed", t, key=key)
    journal.append("state", t + 10.0, key=key, state=state)


class TestRotationAndCompaction:
    def test_rotation_drops_terminal_keeps_live(self, tmp_path):
        path = str(tmp_path / "rot.jsonl")
        journal = RepairJournal(path, max_entries=4)
        live = outage_key("origin", "0.9.0.1", 500.0)
        _finish(journal, KEY, 100.0)  # terminal: compacted away
        journal.append("observed", 500.0, key=live)
        journal.append("isolated", 600.0, key=live, blamed_asn=7)
        # 5th entry crosses max_entries and triggers the rotation.
        journal.append("poison", 700.0, key=live, asn=7)
        journal.close()

        assert journal.rotations == 1
        assert journal.compacted_away == 2
        assert [e["event"] for e in journal.for_outage(live)] == [
            "observed", "isolated", "poison",
        ]
        assert journal.for_outage(KEY) == []
        (marker,) = journal.of_event("compacted")
        assert marker["dropped"] == 2
        assert marker["event_counts"] == {"observed": 1, "state": 1}
        # Whole-life counts still see the dropped entries.
        assert journal.count_of("observed") == 2
        assert journal.count_of("state") == 1

    def test_terminal_rollback_becomes_breaker_entry(self, tmp_path):
        path = str(tmp_path / "breaker.jsonl")
        journal = RepairJournal(path, max_entries=4)
        journal.append("observed", 100.0, key=KEY)
        journal.append(
            "rollback", 200.0, key=KEY, asn=9, failures=2
        )
        journal.append("state", 300.0, key=KEY, state="not-poisoned")
        journal.append("observed", 400.0, key=KEY)  # stale extra entry
        journal.append("note", 500.0, text="tick")
        journal.close()

        (synth,) = journal.of_event("breaker")
        assert synth["vp"] == KEY[0]
        assert synth["dst"] == KEY[1]
        assert synth["asn"] == 9
        assert synth["failures"] == 2
        assert synth["last_failure"] == 200.0

    def test_terminal_announcements_become_pacer_entry(self, tmp_path):
        path = str(tmp_path / "pacer.jsonl")
        journal = RepairJournal(
            path, max_entries=4, pacer_window=2000.0
        )
        journal.append("announced", 100.0, prefix="0.0.1.0/24")
        _finish(journal, KEY, 3000.0)
        journal.append("announced", 3500.0, prefix="0.0.1.0/24")
        # The 5th entry rotates at t=4000: the window floor is 2000, so
        # the announcement at 100.0 can never count again and is pruned.
        journal.append("note", 4000.0, text="tick")
        journal.close()

        (synth,) = journal.of_event("pacer")
        assert synth["times"] == [3500.0]
        assert journal.of_event("announced") == []

    def test_load_replays_across_rotated_segments(self, tmp_path):
        path = str(tmp_path / "segments.jsonl")
        journal = RepairJournal(path, max_entries=4)
        live = outage_key("origin", "0.9.0.1", 500.0)
        for index in range(3):
            _finish(
                journal,
                outage_key("origin", "0.6.0.1", float(index)),
                100.0 * index,
            )
        journal.append("observed", 900.0, key=live)
        journal.close()
        assert journal.rotations >= 1

        loaded = RepairJournal.load(path)
        assert loaded.entries == journal.entries
        assert loaded.count_of("observed") == 4

    def test_load_resume_reopens_for_append(self, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        journal = RepairJournal(path)
        journal.append("observed", 100.0, key=KEY)
        journal.close()

        resumed = RepairJournal.load(path, resume=True)
        resumed.append("poison", 200.0, key=KEY, asn=7)
        resumed.close()
        assert [e["event"] for e in RepairJournal.load(path)] == [
            "observed", "poison",
        ]

    def test_live_state_beyond_limit_does_not_churn(self, tmp_path):
        """Once live state alone exceeds max_entries, rotation must back
        off (geometric growth), not rewrite the file on every append."""
        path = str(tmp_path / "churn.jsonl")
        journal = RepairJournal(path, max_entries=4)
        live = outage_key("origin", "0.9.0.1", 500.0)
        for index in range(20):
            journal.append("observed", float(index), key=live)
        journal.close()
        assert journal.rotations <= 3

    def test_superseded_segments_are_pruned(self, tmp_path):
        path = str(tmp_path / "prune.jsonl")
        journal = RepairJournal(
            path, max_entries=2, retain_segments=2
        )
        for index in range(12):
            _finish(
                journal,
                outage_key("origin", "0.6.0.1", float(index)),
                100.0 * index,
            )
        journal.close()
        assert journal.rotations > 2
        import os as _os

        segments = sorted(
            name
            for name in _os.listdir(str(tmp_path))
            if name.startswith("prune.jsonl.")
        )
        assert len(segments) == 2
        assert segments[-1].endswith(str(journal.rotations))
