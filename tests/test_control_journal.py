"""Unit tests for the write-ahead repair journal."""

import json

import pytest

from repro.control.journal import (
    JOURNAL_VERSION,
    RepairJournal,
    key_from_json,
    key_to_json,
    outage_key,
)
from repro.errors import ControlError

KEY = outage_key("origin", "0.6.0.1", 1020.0)


class TestOutageKey:
    def test_key_is_stable_across_equal_inputs(self):
        assert KEY == outage_key("origin", "0.6.0.1", 1020)

    def test_json_roundtrip(self):
        assert key_from_json(key_to_json(KEY)) == KEY


class TestInMemoryJournal:
    def test_append_returns_entry_with_version_and_time(self):
        journal = RepairJournal()
        entry = journal.append("poison", 1200.0, key=KEY, asn=7)
        assert entry["v"] == JOURNAL_VERSION
        assert entry["t"] == 1200.0
        assert entry["event"] == "poison"
        assert entry["asn"] == 7
        assert entry["outage"] == key_to_json(KEY)

    def test_none_fields_are_dropped(self):
        journal = RepairJournal()
        entry = journal.append("state", 0.0, key=KEY, reason=None, asn=7)
        assert "reason" not in entry
        assert entry["asn"] == 7

    def test_global_entries_have_no_outage(self):
        journal = RepairJournal()
        entry = journal.append("announce-baseline", 0.0)
        assert "outage" not in entry

    def test_of_event_and_for_outage_filters(self):
        journal = RepairJournal()
        other = outage_key("helper0", "0.9.0.1", 2000.0)
        journal.append("observed", 1020.0, key=KEY)
        journal.append("observed", 2000.0, key=other)
        journal.append("poison", 1300.0, key=KEY, asn=7)
        assert len(journal.of_event("observed")) == 2
        assert len(journal.for_outage(KEY)) == 2
        assert len(journal.for_outage(other)) == 1
        assert len(journal) == 3
        assert len(list(journal)) == 3


class TestPersistedJournal:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RepairJournal(path)
        journal.append("announce-baseline", 0.0)
        journal.append("poison", 1300.0, key=KEY, asn=7, control=["0.9.0.1"])
        journal.close()

        loaded = RepairJournal.load(path)
        assert loaded.entries == journal.entries

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RepairJournal(path)
        journal.append("poison", 1300.0, key=KEY, asn=7)
        journal.close()
        with open(path, encoding="utf-8") as handle:
            line = handle.readline().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ControlError, match="malformed"):
            RepairJournal.load(str(path))

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"v": 999, "t": 0.0, "event": "observed"}) + "\n"
        )
        with pytest.raises(ControlError, match="version"):
            RepairJournal.load(str(path))

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            json.dumps(
                {"v": JOURNAL_VERSION, "t": 0.0, "event": "observed"}
            )
            + "\n\n"
        )
        assert len(RepairJournal.load(str(path))) == 1
