"""Tests for CDFs, residual curves, loss replay, and report rendering."""

import pytest

from repro.analysis.cdf import CDF
from repro.analysis.loss import ConvergenceLossReplay
from repro.analysis.reporting import Table, format_figure_series
from repro.analysis.residual import residual_duration_curve
from repro.bgp.engine import BGPEngine
from repro.bgp.messages import make_path
from repro.errors import ReproError
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship


class TestCDF:
    def test_at_and_percentile(self):
        cdf = CDF([1, 2, 3, 4, 5])
        assert cdf.at(3) == 0.6
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10) == 1.0
        assert cdf.median == 3
        assert cdf.percentile(0.0) == 1
        assert cdf.percentile(1.0) == 5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            CDF([])

    def test_mean_min_max(self):
        cdf = CDF([2, 4, 6])
        assert cdf.mean == 4
        assert cdf.min == 2 and cdf.max == 6

    def test_points_monotonic(self):
        cdf = CDF(range(100))
        points = cdf.points(num_points=11)
        ys = [y for _, y in points]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0


class TestResidualCurve:
    def test_heavy_tail_raises_residual(self):
        # 90 short outages of 2 min, 10 long outages of 2 hours.
        durations = [120.0] * 90 + [7200.0] * 10
        curve = residual_duration_curve(durations, elapsed_minutes=[0, 5])
        at0, at5 = curve
        # At elapsed 0 the median residual is short...
        assert at0.median_minutes == pytest.approx(2.0, abs=0.5)
        # ...but every survivor at 5 minutes is a long outage.
        assert at5.survivors == 10
        assert at5.median_minutes == pytest.approx(115.0, abs=1.0)

    def test_no_survivors_yields_none(self):
        curve = residual_duration_curve([60.0], elapsed_minutes=[5])
        assert curve[0].survivors == 0
        assert curve[0].mean_minutes is None


class TestLossReplay:
    @pytest.fixture()
    def poisoned_engine(self):
        """Diamond where poisoning A(6) forces E(5) to reroute."""
        g = ASGraph()
        for asn in (1, 2, 3, 4, 5, 6):
            g.add_as(asn)
        p = Prefix("10.200.0.0/16")
        g.assign_prefix(1, p)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(2, 3, Relationship.PROVIDER)
        g.add_link(2, 6, Relationship.PROVIDER)
        g.add_link(4, 3, Relationship.PROVIDER)
        g.add_link(5, 4, Relationship.PROVIDER)
        g.add_link(5, 6, Relationship.PROVIDER)
        engine = BGPEngine(g)
        engine.originate(1, p, path=make_path(1, prepend=3))
        engine.run()
        poison_time = engine.now
        engine.originate(1, p, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        return engine, p, poison_time

    def test_sources_delivered_after_convergence(self, poisoned_engine):
        engine, prefix, poison_time = poisoned_engine
        replay = ConvergenceLossReplay(engine, prefix)
        assert replay.delivery_outcome(5, engine.now + 1) == "delivered"
        assert replay.delivery_outcome(3, engine.now + 1) == "delivered"
        # The poisoned AS itself is cut off.
        assert replay.delivery_outcome(6, engine.now + 1) == "blackhole"

    def test_loss_timeline_bounds(self, poisoned_engine):
        engine, prefix, poison_time = poisoned_engine
        replay = ConvergenceLossReplay(engine, prefix)
        samples = replay.loss_timeline(
            [3, 4, 5], poison_time, engine.now + 10
        )
        assert samples
        assert all(0.0 <= s.loss_rate <= 1.0 for s in samples)
        assert samples[-1].lost == 0

    def test_overall_loss_excludes_cut_off_sources(self, poisoned_engine):
        engine, prefix, poison_time = poisoned_engine
        replay = ConvergenceLossReplay(engine, prefix)
        rate = replay.overall_loss_rate(
            [3, 4, 5, 6], poison_time, engine.now + 10
        )
        assert 0.0 <= rate < 1.0


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("Demo", ["metric", "paper", "measured"])
        table.add_row("alpha", 0.9, 0.8811)
        table.add_row("count", 10308, 10308)
        table.add_note("synthetic data")
        text = table.render()
        assert "Demo" in text
        assert "0.881" in text
        assert "10,308" in text
        assert "note: synthetic data" in text

    def test_table_rejects_wrong_arity(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_emit_writes_file(self, tmp_path):
        table = Table("My Result", ["a"])
        table.add_row(1)
        table.emit(results_dir=str(tmp_path))
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert "my_result" in files[0].name

    def test_figure_series_formatting(self):
        text = format_figure_series(
            "Fig X", [("events", [(1.0, 0.5), (10.0, 1.0)])],
            x_label="minutes", y_label="cdf",
        )
        assert "Fig X" in text and "events" in text
