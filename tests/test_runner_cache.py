"""Tests for the converged-topology disk cache."""

import pickle

from repro.bgp.engine import EngineConfig
from repro.runner import DiskCache, RunStats, converged_internet
from repro.runner.cache import cache_key, resolve_cache


class TestCacheKey:
    def test_stable_and_order_insensitive(self):
        assert cache_key("ns", {"a": 1, "b": 2}) == cache_key(
            "ns", {"b": 2, "a": 1}
        )

    def test_sensitive_to_params_and_namespace(self):
        base = cache_key("ns", {"a": 1})
        assert cache_key("ns", {"a": 2}) != base
        assert cache_key("other", {"a": 1}) != base


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        assert cache.get("t", {"x": 1}) is None
        cache.put("t", {"x": 1}, {"payload": 42})
        assert cache.get("t", {"x": 1}) == {"payload": 42}
        assert stats.counters["cache.misses"] == 1
        assert stats.counters["cache.hits"] == 1
        assert stats.cache_hit_rate == 0.5

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("t", {"x": 1}, "ok")
        path = cache._path("t", cache_key("t", {"x": 1}))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("t", {"x": 1}) is None

    def test_resolve_cache_passthrough_and_path(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert resolve_cache(cache) is cache
        built = resolve_cache(str(tmp_path))
        assert isinstance(built, DiskCache)
        assert built.root == str(tmp_path)

    def test_resolve_cache_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        built = resolve_cache(None)
        assert built is not None and built.root == str(tmp_path)


class TestConvergedBaselineCache:
    def test_warm_hit_is_byte_identical_to_cold(self, tmp_path):
        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        cold = converged_internet("tiny", seed=4, cache=cache, stats=stats)
        assert stats.counters["cache.misses.converged"] == 1
        warm = converged_internet("tiny", seed=4, cache=cache, stats=stats)
        assert stats.counters["cache.hits.converged"] == 1
        assert pickle.dumps(cold.engine) == pickle.dumps(warm.engine)
        assert pickle.dumps(cold.graph) == pickle.dumps(warm.graph)

    def test_engine_config_change_invalidates(self, tmp_path):
        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        converged_internet("tiny", seed=4, cache=cache, stats=stats)
        converged_internet(
            "tiny",
            seed=4,
            engine_config=EngineConfig(seed=4, mrai=5.0),
            cache=cache,
            stats=stats,
        )
        assert stats.counters["cache.misses.converged"] == 2
        assert "cache.hits.converged" not in stats.counters

    def test_seed_and_origin_knobs_invalidate(self, tmp_path):
        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        converged_internet("tiny", seed=4, cache=cache, stats=stats)
        converged_internet("tiny", seed=5, cache=cache, stats=stats)
        converged_internet(
            "tiny", seed=4, origin_providers=2, cache=cache, stats=stats
        )
        assert stats.counters["cache.misses.converged"] == 3

    def test_drivers_reuse_the_converged_entry(self, tmp_path):
        from repro.experiments.efficacy import run_topology_efficacy_study

        stats = RunStats()
        cache = DiskCache(tmp_path, stats=stats)
        cold, _ = run_topology_efficacy_study(
            scale="tiny", seed=4, max_cases=20, cache=cache, stats=stats
        )
        warm_stats = RunStats()
        warm, _ = run_topology_efficacy_study(
            scale="tiny", seed=4, max_cases=20, cache=cache,
            stats=warm_stats,
        )
        assert warm_stats.counters["cache.hits.converged"] == 1
        assert cold.outcomes == warm.outcomes
