"""Tests for FIBs, forwarding walks and failure models."""


from repro.dataplane.failures import (
    ASForwardingFailure,
    LinkFailure,
    RouterFailure,
)
from repro.dataplane.fib import LOCAL, build_fibs
from repro.dataplane.forwarding import ForwardOutcome
from repro.topology.generate import prefix_for_asn


def _routers_in_distinct_stub_ases(graph, topo, count=2):
    stubs = [n.asn for n in graph.nodes() if n.tier == 3]
    return [topo.routers_of(asn)[0] for asn in stubs[:count]]


class TestFibs:
    def test_origin_prefix_is_local(self, small_internet):
        graph, _topo, engine = small_internet
        fibs = build_fibs(engine)
        some_as = next(iter(graph.ases()))
        assert fibs.next_hop_as(
            some_as, prefix_for_asn(some_as).address(1)
        ) == LOCAL

    def test_next_hop_matches_loc_rib(self, small_internet):
        graph, _topo, engine = small_internet
        fibs = build_fibs(engine)
        ases = sorted(graph.ases())
        src, dst = ases[0], ases[-1]
        expected = engine.best_route(src, prefix_for_asn(dst)).neighbor
        assert fibs.next_hop_as(src, prefix_for_asn(dst).address(1)) == expected

    def test_origin_for_finds_owner(self, small_internet):
        graph, _topo, engine = small_internet
        fibs = build_fibs(engine)
        asn = sorted(graph.ases())[3]
        assert fibs.origin_for(prefix_for_asn(asn).address(9)) == asn


class TestForwarding:
    def test_delivery_between_stubs(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        result = dataplane.forward(src, topo.router(dst).address)
        assert result.delivered
        assert result.final_router == dst
        assert result.hops[0] == src

    def test_as_level_path_matches_bgp(self, small_internet, dataplane):
        graph, topo, engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        src_asn, dst_asn = topo.router(src).asn, topo.router(dst).asn
        result = dataplane.forward(src, topo.router(dst).address)
        from repro.bgp.messages import unique_ases

        bgp_path = unique_ases(engine.as_path(src_asn, prefix_for_asn(dst_asn)))
        assert tuple(result.as_level_hops(topo)) == (src_asn,) + bgp_path

    def test_ttl_expiry(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        result = dataplane.forward(src, topo.router(dst).address, ttl=1)
        assert result.outcome is ForwardOutcome.TTL_EXPIRED
        assert len(result.hops) == 2  # source + the expiring hop

    def test_no_route_to_unknown_prefix(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src = _routers_in_distinct_stub_ases(graph, topo, 1)[0]
        result = dataplane.forward(src, "203.0.113.1")
        assert result.outcome is ForwardOutcome.NO_ROUTE

    def test_host_address_delivers_to_first_router(
        self, small_internet, dataplane
    ):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        dst_asn = topo.router(dst).asn
        host = prefix_for_asn(dst_asn).address(4000)  # not a router address
        result = dataplane.forward(src, host)
        assert result.delivered
        assert result.final_router == topo.routers_of(dst_asn)[0]


class TestFailures:
    def test_router_failure_drops(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        clean = dataplane.forward(src, topo.router(dst).address)
        assert clean.delivered and len(clean.hops) >= 3
        victim = clean.hops[len(clean.hops) // 2]
        dataplane.failures.add(RouterFailure(rid=victim))
        broken = dataplane.forward(src, topo.router(dst).address)
        assert broken.outcome is ForwardOutcome.DROPPED
        assert broken.final_router == victim

    def test_as_failure_scoped_to_destination(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        clean = dataplane.forward(src, topo.router(dst).address)
        transit_asn = clean.as_level_hops(topo)[1]
        dst_prefix = prefix_for_asn(topo.router(dst).asn)
        dataplane.failures.add(
            ASForwardingFailure(asn=transit_asn, toward=dst_prefix)
        )
        # Traffic toward dst dies in the failed AS...
        assert not dataplane.forward(src, topo.router(dst).address).delivered
        # ...but unrelated destinations through the same AS still work.
        other = [
            n.asn
            for n in graph.nodes()
            if n.tier == 3 and n.asn not in (topo.router(src).asn,
                                             topo.router(dst).asn)
        ]
        for candidate in other:
            walk = dataplane.forward(
                src, prefix_for_asn(candidate).address(1)
            )
            if transit_asn in walk.as_level_hops(topo):
                assert walk.delivered
                break

    def test_link_failure_unidirectional(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        clean = dataplane.forward(src, topo.router(dst).address)
        a, b = clean.hops[1], clean.hops[2]
        dataplane.failures.add(LinkFailure(a=a, b=b, bidirectional=False))
        broken = dataplane.forward(src, topo.router(dst).address)
        if (a, b) in zip(clean.hops, clean.hops[1:]):
            assert not broken.delivered

    def test_failure_time_window(self, small_internet, dataplane):
        graph, topo, _engine = small_internet
        src, dst = _routers_in_distinct_stub_ases(graph, topo)
        victim = dataplane.forward(src, topo.router(dst).address).hops[1]
        dataplane.failures.add(
            RouterFailure(rid=victim, start=100.0, end=200.0)
        )
        assert dataplane.forward(
            src, topo.router(dst).address, now=50.0
        ).delivered
        assert not dataplane.forward(
            src, topo.router(dst).address, now=150.0
        ).delivered
        assert dataplane.forward(
            src, topo.router(dst).address, now=250.0
        ).delivered
