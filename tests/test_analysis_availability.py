"""Unit tests for the §4.2 avoidable-unavailability analysis."""

import pytest

from repro.analysis.availability import (
    avoidable_unavailability,
    latency_sweep,
)
from repro.errors import ReproError


class TestAvoidableUnavailability:
    def test_zero_latency_avoids_everything(self):
        result = avoidable_unavailability([100.0, 200.0], 0.0)
        assert result.avoided_fraction == 1.0
        assert result.outages_repaired == 2

    def test_latency_longer_than_outages_avoids_nothing(self):
        result = avoidable_unavailability([100.0, 200.0], 500.0)
        assert result.avoided_fraction == 0.0
        assert result.outages_repaired == 0

    def test_partial_avoidance(self):
        # One 10-min outage, repair after 7 min: 3 of 10 minutes saved.
        result = avoidable_unavailability([600.0], 420.0)
        assert result.avoided_unavailability == pytest.approx(180.0)
        assert result.avoided_fraction == pytest.approx(0.3)

    def test_empty_trace_rejected(self):
        with pytest.raises(ReproError):
            avoidable_unavailability([], 60.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError):
            avoidable_unavailability([100.0], -1.0)

    def test_sweep_monotone_decreasing(self):
        durations = [90.0, 600.0, 7200.0, 86400.0]
        sweep = latency_sweep(durations, latencies=(0.0, 60.0, 3600.0))
        fractions = [p.avoided_fraction for p in sweep]
        assert fractions == sorted(fractions, reverse=True)

    def test_heavy_tail_dominates(self):
        """Many short outages + one long one: a slow repair still saves
        most downtime, the paper's core argument."""
        durations = [90.0] * 100 + [36000.0]
        result = avoidable_unavailability(durations, 420.0)
        assert result.outages_repaired == 1
        assert result.avoided_fraction > 0.75
