"""Tests for the poison decision model and sentinel manager."""

import pytest

from repro.control.decision import ResidualDurationModel
from repro.control.sentinel import (
    SentinelManager,
    SentinelStyle,
    covering_sentinel,
    unused_half,
)
from repro.dataplane.probes import Prober
from repro.errors import ControlError
from repro.net.addr import Prefix


class TestResidualDurationModel:
    def test_empty_sample_rejected(self):
        with pytest.raises(ControlError):
            ResidualDurationModel([])

    def test_survival_probability(self):
        model = ResidualDurationModel([100, 100, 100, 1000])
        # Of outages lasting >200s (just the 1000s one), all last 300 more.
        assert model.survival_probability(200, 300) == 1.0
        # Of all outages, only 1/4 lasts at least 300.
        assert model.survival_probability(0, 300) == 0.25

    def test_no_survivors(self):
        model = ResidualDurationModel([100.0])
        assert model.survival_probability(200, 10) == 0.0
        assert model.median_residual(200) is None
        assert model.mean_residual(200) is None

    def test_decide_waits_for_young_outages(self):
        model = ResidualDurationModel([90.0] * 50 + [7200.0] * 50)
        decision = model.decide(elapsed=120.0)
        assert not decision.poison
        assert "likely to resolve" in decision.rationale

    def test_decide_poisons_persistent_outages(self):
        model = ResidualDurationModel([90.0] * 50 + [7200.0] * 50)
        decision = model.decide(elapsed=400.0)
        assert decision.poison
        assert decision.expected_residual > 120.0

    def test_decide_declines_when_residual_small(self):
        # Everything dies at exactly 420s: at 400s the residual is 20s.
        model = ResidualDurationModel([420.0] * 100)
        decision = model.decide(elapsed=400.0)
        assert not decision.poison

    def test_residual_percentiles_ordered(self):
        model = ResidualDurationModel(
            [100, 200, 400, 800, 1600, 3200]
        )
        p25 = model.residual_percentile(50, 0.25)
        p50 = model.residual_percentile(50, 0.50)
        assert p25 <= p50


class TestSentinelHelpers:
    def test_covering_sentinel(self):
        assert covering_sentinel(Prefix("10.2.0.0/16")) == Prefix(
            "10.2.0.0/15"
        )

    def test_covering_sentinel_of_slash0_rejected(self):
        with pytest.raises(ControlError):
            covering_sentinel(Prefix("0.0.0.0/0"))

    def test_unused_half(self):
        production = Prefix("10.2.0.0/16")
        sentinel = Prefix("10.2.0.0/15")
        half = unused_half(production, sentinel)
        assert half == Prefix("10.3.0.0/16")

    def test_unused_half_requires_cover(self):
        with pytest.raises(ControlError):
            unused_half(Prefix("10.2.0.0/16"), Prefix("10.4.0.0/15"))


class TestSentinelManager:
    @pytest.fixture()
    def prober(self, dataplane):
        return Prober(dataplane)

    def _origin_router(self, small_internet):
        graph, topo, _engine = small_internet
        stub = graph.stubs()[0]
        return topo.routers_of(stub)[0], stub

    def test_less_specific_properties(self, small_internet, prober):
        rid, asn = self._origin_router(small_internet)
        production = small_internet[0].node(asn).prefixes[0]
        manager = SentinelManager(prober, rid, production)
        assert manager.can_detect_repair
        assert manager.provides_backup_route
        assert production.is_more_specific_of(manager.sentinel)

    def test_disjoint_requires_prefix(self, small_internet, prober):
        rid, asn = self._origin_router(small_internet)
        production = small_internet[0].node(asn).prefixes[0]
        with pytest.raises(ControlError):
            SentinelManager(
                prober, rid, production, style=SentinelStyle.DISJOINT
            )
        manager = SentinelManager(
            prober, rid, production,
            style=SentinelStyle.DISJOINT,
            disjoint_prefix=Prefix("198.51.0.0/16"),
        )
        assert manager.can_detect_repair
        assert not manager.provides_backup_route

    def test_none_style_cannot_detect(self, small_internet, prober):
        rid, asn = self._origin_router(small_internet)
        production = small_internet[0].node(asn).prefixes[0]
        manager = SentinelManager(
            prober, rid, production, style=SentinelStyle.NONE
        )
        assert not manager.can_detect_repair
        check = manager.check_repair(["10.0.0.1"])
        assert not check.repaired
        assert check.probes_used == 0
