"""Edge cases of the LIFEGUARD control loop: decisions not to poison."""


from repro.control.lifeguard import OperatingMode, RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.faults import FaultKind, FaultSpec
from repro.measure.atlas import AtlasRefresher, PathAtlas
from repro.measure.monitor import MonitorEvent
from repro.workloads.scenarios import (
    build_chaos_deployment,
    build_deployment,
)


def _first_transit_on_reverse_path(scenario):
    """The first transit AS on the target->origin path (demo's ground
    truth recipe)."""
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    target = scenario.targets[0]
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    return next(
        a
        for a in walk.as_level_hops(topo)[1:-1]
        if a != scenario.origin_asn
    )


class TestNoAlternateDecision:
    def test_single_provider_failure_not_poisoned(self):
        """If the blamed AS is the origin's only provider, no poison:
        there is no policy-compliant path around it."""
        scenario = build_deployment(
            scale="tiny", seed=41, num_providers=1
        )
        lifeguard = scenario.lifeguard
        provider = scenario.graph.providers(scenario.origin_asn)[0]
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=provider,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=500.0, end=2000.0)
        assert not lifeguard.poisoned_records()
        blamed_provider = [
            r
            for r in lifeguard.records
            if r.state is RepairState.NOT_POISONED
            and r.isolation is not None
            and r.isolation.blamed_asn == provider
        ]
        assert blamed_provider
        assert any(
            "no policy-compliant path" in note
            for record in blamed_provider
            for note in record.notes
        )

    def test_failure_in_destination_as_not_poisoned(self):
        """A failure inside the destination's own AS is its operators'
        problem; poisoning the edge would only cut it off."""
        scenario = build_deployment(
            scale="tiny", seed=43, num_providers=2
        )
        lifeguard = scenario.lifeguard
        topo = scenario.topo
        target = scenario.targets[0]
        target_asn = topo.router_by_address(target).asn
        lifeguard.prime_atlas(now=0.0)
        # Break forwarding *to the origin* inside the destination AS.
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=target_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=500.0, end=2000.0)
        poisons_of_target = [
            r
            for r in lifeguard.poisoned_records()
            if r.poisoned_asn == target_asn
        ]
        assert not poisons_of_target


class TestDegradedOperation:
    def test_vp_down_rounds_produce_no_outage(self):
        """A dead vantage point must not manufacture outages: its pairs
        report VP_DOWN and the failure is only detected once it restarts."""
        scenario, injector = build_chaos_deployment(
            scale="tiny", seed=0, intensity=0.0,
            crash_helper=False, reset_session=False, num_providers=2,
        )
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        bad_asn = _first_transit_on_reverse_path(scenario)
        injector.plan.add(
            FaultSpec(FaultKind.VP_CRASH, vp="origin", start=0.0, end=1500.0)
        )
        # A real failure on the origin's reverse paths, active throughout.
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=30.0, end=1440.0)
        assert lifeguard.mode is OperatingMode.DEGRADED
        events = lifeguard.monitor.run_round(1440.0)
        assert MonitorEvent.VP_DOWN in events.values()
        assert MonitorEvent.OUTAGE_STARTED not in events.values()
        assert lifeguard.monitor.outages == []
        # Once the VP restarts, live rounds rebuild the failure streak and
        # detection fires for real.
        lifeguard.run(start=1530.0, end=3000.0)
        assert lifeguard.mode is OperatingMode.NORMAL
        assert lifeguard.monitor.outages
        assert all(
            o.vp_name == "origin" for o in lifeguard.monitor.outages
        )

    def test_low_confidence_isolation_defers_then_gives_up(self):
        """With every helper down, isolation confidence stays below the
        poisoning threshold: the loop defers, retries, and after the
        budget runs dry concludes NOT_POISONED — it never acts on thin
        evidence."""
        scenario = build_deployment(scale="tiny", seed=0, num_providers=2)
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        bad_asn = _first_transit_on_reverse_path(scenario)
        for vp in scenario.vantage_points:
            if vp.name != "origin":
                scenario.vantage_points.mark_down(vp.name)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=30.0, end=3000.0)
        assert lifeguard.mode is OperatingMode.DEGRADED
        assert not lifeguard.poisoned_records()
        record = next(
            r for r in lifeguard.records if r.outage.vp_name == "origin"
        )
        assert record.isolation is not None
        assert record.isolation.confidence < lifeguard.config.min_confidence
        assert any("deferring poisoning" in note for note in record.notes)
        assert record.state is RepairState.NOT_POISONED
        assert any("retry budget" in note for note in record.notes)

    def test_sentinel_false_negatives_delay_but_never_falsify_repair(self):
        """Lost sentinel replies postpone repair detection; they never
        trigger a premature unpoison, and once the loss clears the poison
        is withdrawn normally."""
        scenario, injector = build_chaos_deployment(
            scale="tiny", seed=0, intensity=0.0,
            crash_helper=False, reset_session=False, num_providers=2,
        )
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        bad_asn = _first_transit_on_reverse_path(scenario)
        injector.plan.add(
            FaultSpec(
                FaultKind.SENTINEL_FALSE_NEGATIVE,
                rate=1.0, start=0.0, end=6000.0,
            )
        )
        # The underlying failure is genuinely repaired at t=3000 -- but
        # every sentinel reply is suppressed until t=6000.
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0, end=3000.0,
            )
        )
        lifeguard.run(start=30.0, end=9000.0)
        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        assert lifeguard.sentinel_manager.replies_suppressed > 0
        assert record.state is RepairState.UNPOISONED
        assert record.repair_detected_time is not None
        # Detection waited out the suppression window instead of firing
        # on a lucky (or faked) early check.
        assert record.repair_detected_time > 6000.0


class TestIncrementalAtlasMode:
    def test_incremental_refresher_populates_atlas(self):
        scenario = build_deployment(scale="tiny", seed=47, num_providers=2)
        lifeguard = scenario.lifeguard
        atlas = PathAtlas()
        refresher = AtlasRefresher(
            lifeguard.prober,
            scenario.vantage_points,
            atlas,
            use_incremental=True,
        )
        stats = refresher.refresh_all(scenario.targets[:2], now=0.0)
        assert stats.paths_refreshed > 0
        # Incremental mode accounts actual probes, not the cost model.
        assert stats.option_probes > 0
        for vp in scenario.vantage_points:
            entry = atlas.latest_reverse(vp.name, scenario.targets[0])
            if entry is not None:
                assert entry.hops


class TestDeferralRetry:
    """Breaker-backoff and pacing deferrals must land the record back in
    OBSERVED so later ticks retry it.  Regression: both branches once left
    the record in ISOLATED, a state tick() never revisits, so a deferred
    poison was silently abandoned forever (and diverged from journal
    replay, which maps 'deferred' to OBSERVED)."""

    def _scenario_with_failure(self, end=8200.0):
        scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
        lifeguard = scenario.lifeguard
        bad_asn = _first_transit_on_reverse_path(scenario)
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=1000.0,
                end=end,
            )
        )
        return scenario, lifeguard, bad_asn

    def test_pacing_deferral_is_retried_once_budget_frees(self):
        scenario, lifeguard, bad_asn = self._scenario_with_failure()
        # Spend the whole announcement budget just before the decision
        # point, so the first poison attempt hits the flap-damping guard.
        spent_at = 1300.0
        lifeguard.origin.pacer.times.extend(
            [spent_at] * lifeguard.config.announce_budget
        )
        lifeguard.run(start=30.0, end=9600.0)

        deferrals = [
            e
            for e in lifeguard.journal.of_event("deferred")
            if e.get("why") == "pacing"
        ]
        assert deferrals
        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        # The poison happened -- after the budget freed, not never.
        free_at = spent_at + lifeguard.config.announce_window
        assert record.poison_time >= free_at
        assert all(e["t"] < free_at for e in deferrals)
        assert record.state is RepairState.UNPOISONED

    def test_breaker_backoff_deferral_is_retried_after_backoff(self):
        scenario, lifeguard, bad_asn = self._scenario_with_failure()
        # A prior rollback of bad_asn is on the books for every monitored
        # pair: the first poison attempt lands in BACKOFF, not CLOSED.
        failed_at = 1300.0
        for vp in scenario.vantage_points.names():
            for dst in scenario.targets:
                lifeguard.guard.breaker.record_failure(
                    (vp, str(dst)), bad_asn, failed_at
                )
        lifeguard.run(start=30.0, end=9600.0)

        deferrals = [
            e
            for e in lifeguard.journal.of_event("deferred")
            if e.get("why") == "breaker-backoff"
        ]
        assert deferrals
        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        retry_at = failed_at + lifeguard.config.breaker_backoff
        assert record.poison_time >= retry_at
        assert record.state is RepairState.UNPOISONED
