"""Edge cases of the LIFEGUARD control loop: decisions not to poison."""

import pytest

from repro.control.lifeguard import RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.measure.atlas import AtlasRefresher, PathAtlas
from repro.topology.generate import prefix_for_asn
from repro.workloads.scenarios import build_deployment


class TestNoAlternateDecision:
    def test_single_provider_failure_not_poisoned(self):
        """If the blamed AS is the origin's only provider, no poison:
        there is no policy-compliant path around it."""
        scenario = build_deployment(
            scale="tiny", seed=41, num_providers=1
        )
        lifeguard = scenario.lifeguard
        provider = scenario.graph.providers(scenario.origin_asn)[0]
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=provider,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=500.0, end=2000.0)
        assert not lifeguard.poisoned_records()
        blamed_provider = [
            r
            for r in lifeguard.records
            if r.state is RepairState.NOT_POISONED
            and r.isolation is not None
            and r.isolation.blamed_asn == provider
        ]
        assert blamed_provider
        assert any(
            "no policy-compliant path" in note
            for record in blamed_provider
            for note in record.notes
        )

    def test_failure_in_destination_as_not_poisoned(self):
        """A failure inside the destination's own AS is its operators'
        problem; poisoning the edge would only cut it off."""
        scenario = build_deployment(
            scale="tiny", seed=43, num_providers=2
        )
        lifeguard = scenario.lifeguard
        topo = scenario.topo
        target = scenario.targets[0]
        target_asn = topo.router_by_address(target).asn
        lifeguard.prime_atlas(now=0.0)
        # Break forwarding *to the origin* inside the destination AS.
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=target_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
            )
        )
        lifeguard.run(start=500.0, end=2000.0)
        poisons_of_target = [
            r
            for r in lifeguard.poisoned_records()
            if r.poisoned_asn == target_asn
        ]
        assert not poisons_of_target


class TestIncrementalAtlasMode:
    def test_incremental_refresher_populates_atlas(self):
        scenario = build_deployment(scale="tiny", seed=47, num_providers=2)
        lifeguard = scenario.lifeguard
        atlas = PathAtlas()
        refresher = AtlasRefresher(
            lifeguard.prober,
            scenario.vantage_points,
            atlas,
            use_incremental=True,
        )
        stats = refresher.refresh_all(scenario.targets[:2], now=0.0)
        assert stats.paths_refreshed > 0
        # Incremental mode accounts actual probes, not the cost model.
        assert stats.option_probes > 0
        for vp in scenario.vantage_points:
            entry = atlas.latest_reverse(vp.name, scenario.targets[0])
            if entry is not None:
                assert entry.hops
