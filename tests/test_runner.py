"""Tests for the deterministic parallel trial runner.

The load-bearing property is byte-identity: any worker count must
produce exactly the results of a serial run, for the runner primitives
themselves and for every experiment driver built on them.
"""

import pickle

from repro.experiments.accuracy import run_isolation_accuracy_study
from repro.experiments.alternate_paths import run_alternate_path_study
from repro.experiments.convergence import run_poisoning_convergence_study
from repro.experiments.diversity import run_provider_diversity_study
from repro.experiments.efficacy import run_topology_efficacy_study
from repro.runner import RunStats, derive_seed, run_trials


def _square(context, unit):
    return context + unit * unit


def _batched_squares(context, chunk):
    return [context + unit * unit for unit in chunk]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "trial", 3) == derive_seed(7, "trial", 3)

    def test_sensitive_to_every_component(self):
        base = derive_seed(7, "trial", 3)
        assert derive_seed(8, "trial", 3) != base
        assert derive_seed(7, "other", 3) != base
        assert derive_seed(7, "trial", 4) != base

    def test_fits_in_63_bits(self):
        for trial in range(50):
            assert 0 <= derive_seed(0, trial) < (1 << 63)


class TestRunTrials:
    def test_results_in_unit_order(self):
        units = list(range(23))
        serial = run_trials(_square, units, context=100, workers=1)
        parallel = run_trials(_square, units, context=100, workers=4)
        assert serial == [100 + u * u for u in units]
        assert parallel == serial

    def test_batched_contract(self):
        units = list(range(11))
        serial = run_trials(
            _batched_squares, units, context=5, workers=1, batched=True
        )
        parallel = run_trials(
            _batched_squares, units, context=5, workers=3, batched=True,
            chunks_per_worker=1,
        )
        assert serial == [5 + u * u for u in units]
        assert parallel == serial

    def test_stats_record_mode_and_units(self):
        stats = RunStats()
        run_trials(
            _square, [1, 2, 3], context=0, workers=1, stats=stats, label="t"
        )
        assert stats.counters["t.units"] == 3
        assert stats.counters["t.serial_runs"] == 1
        stats = RunStats()
        run_trials(
            _square, [1, 2, 3], context=0, workers=2, stats=stats, label="t"
        )
        assert stats.counters["t.parallel_runs"] == 1
        assert "t.wall" in stats.timers

    def test_empty_units(self):
        assert run_trials(_square, [], context=0, workers=4) == []


class TestDriverParallelIdentity:
    """Each driver must be byte-identical at any worker count."""

    def test_efficacy(self):
        kwargs = dict(scale="tiny", seed=3, num_origins=5, max_cases=40)
        serial, _ = run_topology_efficacy_study(workers=1, **kwargs)
        parallel, _ = run_topology_efficacy_study(workers=4, **kwargs)
        assert serial.outcomes == parallel.outcomes

    def test_convergence(self):
        kwargs = dict(scale="tiny", seed=3, max_poisons=2)
        serial, _ = run_poisoning_convergence_study(workers=1, **kwargs)
        parallel, _ = run_poisoning_convergence_study(workers=4, **kwargs)
        assert pickle.dumps(serial.trials) == pickle.dumps(parallel.trials)

    def test_diversity(self):
        kwargs = dict(scale="tiny", seed=3, num_feeds=10)
        serial, _ = run_provider_diversity_study(workers=1, **kwargs)
        parallel, _ = run_provider_diversity_study(workers=4, **kwargs)
        assert serial.forward_avoidable == parallel.forward_avoidable
        assert serial.reverse_avoidable == parallel.reverse_avoidable

    def test_accuracy(self):
        kwargs = dict(scale="tiny", seed=3, num_cases=4)
        serial, _ = run_isolation_accuracy_study(workers=1, **kwargs)
        parallel, _ = run_isolation_accuracy_study(workers=4, **kwargs)
        assert len(serial.cases) == len(parallel.cases)
        for left, right in zip(serial.cases, parallel.cases):
            assert pickle.dumps(left) == pickle.dumps(right)

    def test_alternate_paths(self):
        kwargs = dict(scale="tiny", seed=3, num_sites=8, num_outages=20)
        serial, _ = run_alternate_path_study(workers=1, **kwargs)
        parallel, _ = run_alternate_path_study(workers=4, **kwargs)
        assert pickle.dumps(serial.cases) == pickle.dumps(parallel.cases)


class TestTrialIndependence:
    """Trial results depend on trial *content*, not batch composition.

    This pins the bugfix for the old drivers' shared-RNG bug: a trial's
    RNG is derived from (master seed, trial identity), so adding or
    removing other trials can't perturb it.
    """

    def test_convergence_trial_independent_of_batch_size(self):
        one, _ = run_poisoning_convergence_study(
            scale="tiny", seed=3, max_poisons=1
        )
        two, _ = run_poisoning_convergence_study(
            scale="tiny", seed=3, max_poisons=2
        )
        first = one.trials[0]
        same = next(
            t
            for t in two.trials
            if t.poisoned_asn == first.poisoned_asn
            and t.prepended_baseline == first.prepended_baseline
        )
        assert pickle.dumps(first) == pickle.dumps(same)

    def test_accuracy_case_independent_of_case_count(self):
        small, _ = run_isolation_accuracy_study(
            scale="tiny", seed=3, num_cases=2
        )
        large, _ = run_isolation_accuracy_study(
            scale="tiny", seed=3, num_cases=4
        )
        for left, right in zip(small.cases, large.cases):
            assert pickle.dumps(left) == pickle.dumps(right)
