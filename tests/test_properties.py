"""Property-based tests (hypothesis) for the core data structures."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import CDF
from repro.bgp.messages import (
    make_path,
    occurrences,
    traversed_ases,
    unique_ases,
)
from repro.control.decision import ResidualDurationModel
from repro.dataplane.failures import ASForwardingFailure
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import STOCHASTIC_KINDS
from repro.net.addr import Address, Prefix
from repro.net.trie import PrefixTrie
from repro.splice.three_tuple import TripleSet
from repro.topology.relationships import Relationship, is_valley_free
from repro.workloads.scenarios import build_deployment

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)
asns = st.integers(min_value=1, max_value=65000)


@st.composite
def prefixes(draw):
    length = draw(prefix_lengths)
    base = draw(addresses)
    mask = Prefix._mask_for(length)
    return Prefix(base & mask, length)


class TestAddressProperties:
    @given(addresses)
    def test_string_roundtrip(self, value):
        assert Address(str(Address(value))).value == value

    @given(addresses, addresses)
    def test_ordering_matches_ints(self, a, b):
        assert (Address(a) < Address(b)) == (a < b)


class TestPrefixProperties:
    @given(prefixes())
    def test_network_address_contained(self, prefix):
        assert prefix.network in prefix
        assert prefix.address(prefix.num_addresses - 1) in prefix

    @given(prefixes())
    def test_string_roundtrip(self, prefix):
        assert Prefix(str(prefix)) == prefix

    @given(prefixes())
    def test_supernet_contains(self, prefix):
        if prefix.length == 0:
            return
        parent = prefix.supernet(prefix.length - 1)
        assert prefix.is_more_specific_of(parent)
        assert parent.contains(prefix)

    @given(prefixes(), addresses)
    def test_containment_is_mask_equality(self, prefix, value):
        expected = (value & prefix.mask) == prefix.base
        assert (Address(value) in prefix) == expected


class TestTrieProperties:
    @settings(max_examples=50)
    @given(
        st.lists(prefixes(), min_size=1, max_size=30, unique=True),
        st.lists(addresses, min_size=1, max_size=20),
    )
    def test_lookup_matches_bruteforce(self, prefix_list, queries):
        trie = PrefixTrie()
        for index, prefix in enumerate(prefix_list):
            trie[prefix] = index
        for query in queries:
            hit = trie.lookup(query)
            covering = [p for p in prefix_list if Address(query) in p]
            if not covering:
                assert hit is None
            else:
                best = max(covering, key=lambda p: p.length)
                assert hit is not None
                assert hit[0] == best
                assert hit[1] == prefix_list.index(best)

    @settings(max_examples=50)
    @given(st.lists(prefixes(), min_size=2, max_size=20, unique=True))
    def test_remove_restores_previous_answers(self, prefix_list):
        trie = PrefixTrie()
        for prefix in prefix_list:
            trie[prefix] = str(prefix)
        removed = prefix_list[-1]
        trie.remove(removed)
        assert removed not in trie
        for prefix in prefix_list[:-1]:
            assert trie.exact(prefix) == str(prefix)


class TestPathProperties:
    @given(asns, st.integers(min_value=1, max_value=5),
           st.lists(asns, max_size=3))
    def test_make_path_endpoints(self, origin, prepend, poison):
        poison = [p for p in poison if p != origin]
        path = make_path(origin, prepend=prepend, poison=poison)
        assert path[0] == origin
        assert path[-1] == origin
        for poisoned in poison:
            assert poisoned in path

    @given(asns, st.lists(asns, min_size=1, max_size=3))
    def test_traversed_excludes_poison_tail(self, origin, poison):
        poison = [p for p in poison if p != origin]
        if not poison:
            return
        path = make_path(origin, prepend=3, poison=poison)
        # Traffic toward the origin stops at the first origin hop.
        assert traversed_ases(path, origin) == ()

    @given(st.lists(asns, min_size=1, max_size=10))
    def test_unique_ases_idempotent(self, hops):
        collapsed = unique_ases(tuple(hops))
        assert unique_ases(collapsed) == collapsed
        for a, b in zip(collapsed, collapsed[1:]):
            assert a != b

    @given(st.lists(asns, min_size=1, max_size=10), asns)
    def test_occurrences_counts(self, hops, needle):
        assert occurrences(tuple(hops), needle) == hops.count(needle)


class TestValleyFreeProperties:
    rels = st.sampled_from(
        [Relationship.PROVIDER, Relationship.PEER, Relationship.CUSTOMER]
    )

    @given(st.lists(rels, max_size=8))
    def test_prefix_of_valley_free_path_up_to_peak(self, labels):
        # A path that climbs only is always valley-free.
        climbing = [Relationship.PROVIDER] * len(labels)
        assert is_valley_free(climbing)

    @given(st.lists(rels, max_size=8))
    def test_appending_descent_preserves_validity(self, labels):
        if is_valley_free(labels):
            assert is_valley_free(labels + [Relationship.CUSTOMER])

    @given(st.lists(rels, max_size=8))
    def test_climb_after_descent_invalid(self, labels):
        if labels and labels[-1] is Relationship.CUSTOMER:
            assert not is_valley_free(
                labels + [Relationship.PROVIDER]
            ) or not is_valley_free(labels) or True
        # Direct statement: any sequence containing customer->provider
        # is invalid.
        sequence = labels + [
            Relationship.CUSTOMER, Relationship.PROVIDER
        ]
        assert not is_valley_free(sequence)


class TestTripleSetProperties:
    @settings(max_examples=50)
    @given(st.lists(st.lists(asns, min_size=2, max_size=6), min_size=1,
                    max_size=10))
    def test_observed_paths_always_allowed(self, paths):
        triples = TripleSet()
        triples.observe_paths(paths)
        for path in paths:
            assert triples.allows_path(path)

    @given(st.lists(asns, min_size=3, max_size=6))
    def test_reverse_of_observed_allowed(self, path):
        triples = TripleSet()
        triples.observe_path(path)
        assert triples.allows_path(list(reversed(path)))


class TestCDFProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_cdf_monotonic_and_bounded(self, values):
        cdf = CDF(values)
        points = sorted(values)
        previous = 0.0
        for x in points:
            y = cdf.at(x)
            assert 0.0 <= y <= 1.0
            assert y >= previous - 1e-12
            previous = y
        assert cdf.at(points[-1]) == 1.0

    @given(st.lists(st.floats(min_value=1, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=50))
    def test_percentile_within_range(self, values):
        cdf = CDF(values)
        assert min(values) <= cdf.median <= max(values)


@st.composite
def null_fault_plans(draw):
    """Arbitrary fault plans whose every spec is stochastic at rate 0."""
    kinds = sorted(STOCHASTIC_KINDS, key=lambda k: k.value)
    specs = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(kinds))
        start = draw(
            st.floats(min_value=0.0, max_value=2400.0, allow_nan=False)
        )
        span = draw(
            st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)
        )
        specs.append(FaultSpec(kind, start=start, end=start + span, rate=0.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultPlan(specs, seed=seed)


class TestNullFaultPlanIdentity:
    """Attaching ANY intensity-0 fault plan is observationally absent: the
    full repair run — every probe count, outage boundary, record note and
    timestamp — is byte-identical to a run with no injector at all.  This
    is the property that makes chaos sweeps trustworthy: intensity is the
    only thing that varies along the axis."""

    _baseline = None

    @staticmethod
    def _fingerprint(injector=None):
        scenario = build_deployment(scale="tiny", seed=7, num_providers=2)
        lifeguard = scenario.lifeguard
        if injector is not None:
            injector.attach(lifeguard)
        lifeguard.prime_atlas(now=0.0)
        topo = scenario.topo
        target = scenario.targets[0]
        origin_router = topo.routers_of(scenario.origin_asn)[0]
        walk = lifeguard.dataplane.forward(
            lifeguard.dataplane.host_router(target),
            topo.router(origin_router).address,
        )
        bad_asn = next(
            a
            for a in walk.as_level_hops(topo)[1:-1]
            if a != scenario.origin_asn
        )
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=500.0,
                end=2000.0,
            )
        )
        lifeguard.run(start=30.0, end=2400.0)
        return repr(
            (
                lifeguard.prober.probes_sent,
                lifeguard.prober.probes_lost_to_faults,
                lifeguard.prober.retries_used,
                [
                    (o.vp_name, str(o.destination), o.start, o.detected,
                     o.end)
                    for o in lifeguard.monitor.outages
                ],
                [
                    (
                        r.outage.vp_name,
                        str(r.outage.destination),
                        r.state.value,
                        r.poisoned_asn,
                        r.poison_time,
                        r.repair_detected_time,
                        r.unpoison_time,
                        tuple(r.notes),
                    )
                    for r in lifeguard.records
                ],
                lifeguard.engine.now,
            )
        ).encode()

    @classmethod
    def baseline(cls):
        if cls._baseline is None:
            cls._baseline = cls._fingerprint()
        return cls._baseline

    @settings(max_examples=5, deadline=None)
    @given(null_fault_plans())
    def test_null_plan_run_is_byte_identical(self, plan):
        assert plan.is_null
        injector = FaultInjector(plan)
        assert self._fingerprint(injector) == self.baseline()
        assert injector.stats.total_events == 0


class TestResidualModelProperties:
    @given(st.lists(st.floats(min_value=90, max_value=1e5,
                              allow_nan=False), min_size=3, max_size=60))
    def test_survival_probability_bounds(self, durations):
        model = ResidualDurationModel(durations)
        p = model.survival_probability(100.0, 100.0)
        assert 0.0 <= p <= 1.0

    @given(st.lists(st.floats(min_value=90, max_value=1e5,
                              allow_nan=False), min_size=3, max_size=60),
           st.floats(min_value=0, max_value=5000))
    def test_survivors_shrink_with_elapsed(self, durations, elapsed):
        model = ResidualDurationModel(durations)
        assert len(model.survivors(elapsed)) >= len(
            model.survivors(elapsed + 100.0)
        )
