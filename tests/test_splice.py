"""Tests for valley-free reachability, the three-tuple test, and splicing."""


from repro.splice.reachability import (
    reachable_set_avoiding,
    valley_free_path,
    valley_free_reachable,
)
from repro.splice.simulate import (
    fraction_with_alternates,
    poisonable_transits,
    simulate_poisoning,
    simulate_poisonings_over_corpus,
)
from repro.splice.splicer import Hop, PathCorpus, Trace
from repro.splice.three_tuple import TripleSet
from repro.topology.as_graph import ASGraph
from repro.topology.generate import InternetShape, generate_internet
from repro.topology.relationships import Relationship


def diamond():
    """Origin 1 behind B(2); B buys from C(3) and A(6); E(5) buys from
    D(4) and A(6); D buys from C."""
    g = ASGraph()
    for asn in (1, 2, 3, 4, 5, 6):
        g.add_as(asn)
    g.add_link(1, 2, Relationship.PROVIDER)
    g.add_link(2, 3, Relationship.PROVIDER)
    g.add_link(2, 6, Relationship.PROVIDER)
    g.add_link(4, 3, Relationship.PROVIDER)
    g.add_link(5, 4, Relationship.PROVIDER)
    g.add_link(5, 6, Relationship.PROVIDER)
    return g


class TestReachability:
    def test_basic_reachability(self):
        g = diamond()
        assert valley_free_reachable(g, 5, 1)

    def test_avoiding_one_transit_uses_other(self):
        g = diamond()
        assert valley_free_reachable(g, 5, 1, avoid=[6])
        assert valley_free_reachable(g, 5, 1, avoid=[4])

    def test_avoiding_sole_provider_cuts_off(self):
        g = diamond()
        assert not valley_free_reachable(g, 5, 1, avoid=[2])

    def test_avoiding_origin_is_empty(self):
        g = diamond()
        assert reachable_set_avoiding(g, 1, avoid=[1]) == set()

    def test_valley_violation_not_reachable(self):
        # 1 and 3 are both customers of 2; 3 has a private peer 4.
        # 4 can reach 1 only via 3 then *up* through 2 - a valley.
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(3, 2, Relationship.PROVIDER)
        g.add_link(3, 4, Relationship.PEER)
        assert not valley_free_reachable(g, 4, 1)

    def test_peer_at_top_allowed(self):
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(2, 3, Relationship.PEER)
        g.add_link(4, 3, Relationship.PROVIDER)
        assert valley_free_reachable(g, 4, 1)

    def test_explicit_path_is_valley_free(self):
        g = diamond()
        path = valley_free_path(g, 5, 1, avoid=[6])
        assert path is not None
        assert path[0] == 5 and path[-1] == 1
        assert 6 not in path

    def test_explicit_path_none_when_unreachable(self):
        g = diamond()
        assert valley_free_path(g, 5, 1, avoid=[2]) is None

    def test_path_matches_reachability_on_random_graph(self):
        g = generate_internet(
            InternetShape(num_tier1=3, num_tier2=8, num_stubs=20), seed=9
        )
        ases = sorted(g.ases())
        for source in ases[:6]:
            for origin in ases[-6:]:
                if source == origin:
                    continue
                has_path = valley_free_path(g, source, origin) is not None
                assert has_path == valley_free_reachable(g, source, origin)


class TestTripleSet:
    def test_observed_triples_allowed(self):
        triples = TripleSet()
        triples.observe_path([1, 2, 3, 4])
        assert triples.allows_triple(1, 2, 3)
        assert triples.allows_triple(3, 2, 1)  # reverse direction
        assert not triples.allows_triple(1, 3, 4)

    def test_prepends_collapsed(self):
        triples = TripleSet()
        triples.observe_path([1, 1, 2, 2, 3])
        assert triples.allows_triple(1, 2, 3)

    def test_allows_path(self):
        triples = TripleSet()
        triples.observe_paths([[1, 2, 3, 4], [2, 3, 5]])
        assert triples.allows_path([1, 2, 3, 4])
        assert triples.allows_path([1, 2, 3, 5])  # spliced from both
        assert not triples.allows_path([4, 1, 2])  # unseen adjacency

    def test_allows_splice_checks_centre_triple(self):
        triples = TripleSet()
        triples.observe_path([1, 2, 3])
        assert triples.allows_splice([1], 2, [3])
        assert not triples.allows_splice([4], 2, [3])


class TestSplicer:
    def _trace(self, src, dst, hops, reached=True):
        return Trace(
            source=src,
            destination=dst,
            hops=tuple(Hop(address=a, asn=asn) for a, asn in hops),
            reached=reached,
        )

    def test_finds_splice_avoiding_failed_as(self):
        corpus = PathCorpus()
        # s -> x via AS 10,20 ; y -> d via AS 20,30 sharing ip 200.
        corpus.add(self._trace("s", "x", [(100, 10), (200, 20), (300, 25)]))
        corpus.add(self._trace("y", "d", [(150, 15), (200, 20), (400, 30)]))
        # Some third path witnessed AS 20 carrying 10 -> 30 traffic, so the
        # splice triple passes the export-policy test.
        corpus.add(self._trace("z", "w", [(500, 10), (210, 20), (410, 30)]))
        # Direct path s->d went through AS 99 (now failed): not in corpus.
        spliced = corpus.find_splice("s", "d", avoid_asns=[99])
        assert spliced is not None
        assert spliced.splice_address == 200
        assert [h.asn for h in spliced.hops] == [10, 20, 30]

    def test_no_splice_through_avoided_as(self):
        corpus = PathCorpus()
        corpus.add(self._trace("s", "x", [(100, 10), (200, 20)]))
        corpus.add(self._trace("y", "d", [(200, 20), (400, 30)]))
        assert corpus.find_splice("s", "d", avoid_asns=[20]) is None
        assert corpus.find_splice("s", "d", avoid_asns=[30]) is None

    def test_requires_shared_ip_not_just_shared_as(self):
        corpus = PathCorpus()
        corpus.add(self._trace("s", "x", [(100, 10), (201, 20)]))
        corpus.add(self._trace("y", "d", [(202, 20), (400, 30)]))
        # Same AS 20 but different addresses: the paper's method would
        # miss this intersection, and so do we.
        assert corpus.find_splice("s", "d", avoid_asns=[99]) is None

    def test_policy_check_blocks_unobserved_triple(self):
        corpus = PathCorpus()
        corpus.add(self._trace("s", "x", [(100, 10), (200, 20)]))
        corpus.add(self._trace("y", "d", [(200, 20), (400, 30)]))
        # Triple (10, 20, 30) never appeared in a single observed path.
        assert corpus.find_splice("s", "d", avoid_asns=[99]) is None
        # Without the policy requirement the splice exists.
        assert (
            corpus.find_splice("s", "d", [99], require_policy=False)
            is not None
        )


class TestPoisonSimulation:
    def test_simulate_single_case(self):
        g = diamond()
        outcome = simulate_poisoning(g, source=5, origin=1, poisoned=6)
        assert outcome.alternate_exists
        outcome = simulate_poisoning(g, source=5, origin=1, poisoned=2)
        assert not outcome.alternate_exists

    def test_poisonable_transits_skips_short_paths(self):
        assert poisonable_transits([1, 2, 3]) == []
        assert poisonable_transits([5, 4, 3, 2, 1]) == [4, 3]

    def test_poisonable_transits_collapses_prepends(self):
        assert poisonable_transits([5, 4, 4, 3, 2, 1, 1]) == [4, 3]

    def test_corpus_simulation(self):
        g = diamond()
        outcomes = simulate_poisonings_over_corpus(
            g, paths=[[5, 6, 2, 1], [5, 4, 3, 2, 1]]
        )
        # Path 1: poison 6 -> alternate exists. Path 2: poison 4 and 3.
        assert len(outcomes) == 3
        assert 0.0 < fraction_with_alternates(outcomes) <= 1.0

    def test_corpus_simulation_dedupes(self):
        g = diamond()
        outcomes = simulate_poisonings_over_corpus(
            g, paths=[[5, 6, 2, 1], [5, 6, 2, 1]]
        )
        assert len(outcomes) == 1
