"""Integration tests for the BGP engine on small hand-built topologies."""


from repro.bgp.engine import BGPEngine
from repro.bgp.messages import make_path
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship

P = Prefix("10.100.0.0/16")


def line_graph():
    """O -- B -- A -- E, each link customer->provider going right."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)  # 2 provides 1 (O)
    g.add_link(2, 3, Relationship.PROVIDER)
    g.add_link(3, 4, Relationship.PROVIDER)
    return g


def diamond_graph():
    """Fig. 2-style: origin O(1) <- B(2) <- {C(3)->D(4)->E(5)}, A(6).

    O's provider is B; B has providers C and A; E buys from A and D; D from
    C.  Gives E two ways to O: via A-B and via D-C-B.
    """
    g = ASGraph()
    for asn in range(1, 7):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)   # B provides O
    g.add_link(2, 3, Relationship.PROVIDER)   # C provides B
    g.add_link(2, 6, Relationship.PROVIDER)   # A provides B
    g.add_link(3, 4, Relationship.PROVIDER)   # D provides C
    g.add_link(5, 4, Relationship.PROVIDER)   # D provides E
    g.add_link(5, 6, Relationship.PROVIDER)   # A provides E
    return g


class TestPropagation:
    def test_route_reaches_everyone_on_line(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P)
        engine.run()
        assert engine.as_path(2, P) == (1,)
        assert engine.as_path(3, P) == (2, 1)
        assert engine.as_path(4, P) == (3, 2, 1)

    def test_origin_loc_rib_has_own_prefix(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P)
        engine.run()
        assert engine.best_route(1, P).neighbor == 1

    def test_withdrawal_propagates(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P)
        engine.run()
        engine.withdraw_origin(1, P)
        engine.run()
        for asn in (2, 3, 4):
            assert engine.as_path(asn, P) is None

    def test_prepending_lengthens_path(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert engine.as_path(4, P) == (3, 2, 1, 1, 1)


class TestValleyFreeExport:
    def test_peer_route_not_exported_to_other_peer_or_provider(self):
        # O(1) customer of B(2); B peers with C(3); C peers with D(4).
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.assign_prefix(1, P)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(2, 3, Relationship.PEER)
        g.add_link(3, 4, Relationship.PEER)
        engine = BGPEngine(g)
        engine.originate(1, P)
        engine.run()
        # C hears the customer route of B over the peering link...
        assert engine.as_path(3, P) == (2, 1)
        # ...but must not pass it to its own peer D (valley-free).
        assert engine.as_path(4, P) is None

    def test_customer_routes_preferred_over_peer_and_provider(self):
        # Target AS 4 hears P from a customer chain and a peer; customer wins.
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.assign_prefix(1, P)
        g.add_link(1, 2, Relationship.PROVIDER)   # 2 provides 1
        g.add_link(1, 3, Relationship.PROVIDER)   # 3 provides 1
        g.add_link(2, 4, Relationship.PROVIDER)   # 4 provides 2 (customer route)
        g.add_link(3, 4, Relationship.PEER)       # 4 peers with 3
        engine = BGPEngine(g)
        engine.originate(1, P)
        engine.run()
        best = engine.best_route(4, P)
        assert best.neighbor == 2  # via the customer, despite equal length


class TestPoisoning:
    def test_poisoned_as_drops_route_and_others_avoid_it(self):
        engine = BGPEngine(diamond_graph())
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        # Baseline: E(5) prefers the shorter path via A(6).
        assert engine.as_path(5, P) == (6, 2, 1, 1, 1)
        # Poison A: announce O-A-O (same length as the O-O-O baseline).
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        # A rejects the poisoned path entirely.
        assert engine.as_path(6, P) is None
        # E reroutes through D-C-B, avoiding A on the traversed hops (the
        # poison tail O-A-O still mentions A, but no packet visits it).
        from repro.bgp.messages import traversed_ases

        path = engine.as_path(5, P)
        assert path is not None
        assert 6 not in traversed_ases(path, 1)
        assert path[:3] == (4, 3, 2)

    def test_captive_stub_loses_route_without_sentinel(self):
        # F(7) is single-homed behind A(6): poisoning A cuts F off.
        g = diamond_graph()
        g.add_as(7)
        g.add_link(7, 6, Relationship.PROVIDER)
        engine = BGPEngine(g)
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert engine.as_path(7, P) is not None
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        assert engine.as_path(7, P) is None

    def test_sentinel_prefix_survives_poisoning(self):
        g = diamond_graph()
        g.add_as(7)
        g.add_link(7, 6, Relationship.PROVIDER)
        sentinel = Prefix("10.100.0.0/15").supernet(15)
        engine = BGPEngine(g)
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.originate(1, sentinel, path=make_path(1, prepend=3))
        engine.run()
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        # The captive stub keeps the covering sentinel route.
        assert engine.as_path(7, P) is None
        assert engine.as_path(7, sentinel) is not None

    def test_selective_poisoning_shifts_egress(self):
        # Origin 1 has two providers 2 and 3; both reach A(4) disjointly.
        g = ASGraph()
        for asn in (1, 2, 3, 4, 5):
            g.add_as(asn)
        g.assign_prefix(1, P)
        g.add_link(1, 2, Relationship.PROVIDER)
        g.add_link(1, 3, Relationship.PROVIDER)
        g.add_link(2, 4, Relationship.PROVIDER)  # A(4) provides 2
        g.add_link(3, 4, Relationship.PROVIDER)  # A(4) provides 3
        g.add_link(4, 5, Relationship.PROVIDER)  # 5 provides A
        engine = BGPEngine(g)
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        baseline = engine.best_route(4, P)
        assert baseline.neighbor in (2, 3)
        poisoned_provider = baseline.neighbor
        clean_provider = 3 if poisoned_provider == 2 else 2
        # Poison A only via the provider it currently uses.
        per_neighbor = {
            poisoned_provider: make_path(1, prepend=3, poison=[4]),
            clean_provider: make_path(1, prepend=3),
        }
        engine.originate(
            1, P, path=make_path(1, prepend=3), per_neighbor=per_neighbor
        )
        engine.run()
        after = engine.best_route(4, P)
        # A keeps a route (not cut off) but now egresses the other way.
        assert after is not None
        assert after.neighbor == clean_provider


class TestLoopPreventionQuirks:
    def test_disabled_loop_detection_ignores_poison(self):
        from repro.bgp.policy import SpeakerConfig

        engine = BGPEngine(
            diamond_graph(),
            speaker_configs={6: SpeakerConfig(loop_max_occurrences=0)},
        )
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        # AS6 accepts the path despite containing itself.
        assert engine.as_path(6, P) is not None

    def test_max_occurrences_two_needs_double_poison(self):
        from repro.bgp.policy import SpeakerConfig

        engine = BGPEngine(
            diamond_graph(),
            speaker_configs={6: SpeakerConfig(loop_max_occurrences=2)},
        )
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        assert engine.as_path(6, P) is not None  # single poison ineffective
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6, 6]))
        engine.run()
        assert engine.as_path(6, P) is None  # double poison works


class TestInstrumentation:
    def test_updates_counted(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P)
        engine.run()
        assert engine.total_updates_sent() >= 3

    def test_change_log_records_event_times(self):
        engine = BGPEngine(line_graph())
        engine.originate(1, P)
        engine.run()
        times = [c.time for c in engine.change_log]
        assert times == sorted(times)
        assert {c.asn for c in engine.change_log} == {1, 2, 3, 4}

    def test_ases_using(self):
        engine = BGPEngine(diamond_graph())
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert 5 in engine.ases_using(P, 6)  # E routes via A
