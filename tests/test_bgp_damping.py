"""Tests for route-flap damping (RFC 2439) in the BGP speaker/engine.

The paper kept each experimental announcement up for 90 minutes precisely
to stay clear of damping; these tests show what would happen otherwise.
"""


from repro.bgp.engine import BGPEngine
from repro.bgp.messages import make_path
from repro.bgp.policy import SpeakerConfig
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship

P = Prefix("10.80.0.0/16")


def line_graph():
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)
    g.add_link(2, 3, Relationship.PROVIDER)
    return g


def flap(engine, times, gap=30.0):
    """Announce/withdraw the prefix repeatedly from the origin."""
    for _ in range(times):
        engine.originate(1, P, path=make_path(1))
        engine.run()
        engine.advance_to(engine.now + gap)
        engine.withdraw_origin(1, P)
        engine.run()
        engine.advance_to(engine.now + gap)


class TestDamping:
    def test_no_damping_by_default(self):
        engine = BGPEngine(line_graph())
        flap(engine, times=3)
        engine.originate(1, P, path=make_path(1))
        engine.run()
        assert engine.as_path(3, P) is not None

    def test_rapid_flaps_suppress_route(self):
        engine = BGPEngine(
            line_graph(),
            speaker_configs={2: SpeakerConfig(flap_damping=True)},
        )
        flap(engine, times=3)
        engine.originate(1, P, path=make_path(1))
        engine.run(until=engine.now + 60.0)
        # AS2 has damped the route from its flappy customer: neither it
        # nor anything behind it selects the route.
        speaker = engine.speakers[2]
        assert speaker.is_suppressed(P, 1)
        assert engine.best_route(2, P) is None
        assert engine.as_path(3, P) is None

    def test_suppressed_route_reused_after_decay(self):
        engine = BGPEngine(
            line_graph(),
            speaker_configs={2: SpeakerConfig(flap_damping=True)},
        )
        flap(engine, times=3)
        engine.originate(1, P, path=make_path(1))
        # Let the reuse timer fire (penalty half-life is 15 min).
        engine.run()
        assert not engine.speakers[2].is_suppressed(P, 1)
        assert engine.as_path(3, P) is not None

    def test_single_announcement_not_suppressed(self):
        engine = BGPEngine(
            line_graph(),
            speaker_configs={2: SpeakerConfig(flap_damping=True)},
        )
        engine.originate(1, P, path=make_path(1))
        engine.run()
        assert not engine.speakers[2].is_suppressed(P, 1)
        assert engine.as_path(3, P) is not None

    def test_spaced_announcements_stay_clear(self):
        """The paper's 90-minute spacing keeps penalties decayed."""
        engine = BGPEngine(
            line_graph(),
            speaker_configs={2: SpeakerConfig(flap_damping=True)},
        )
        flap(engine, times=3, gap=5400.0)  # 90 minutes apart
        engine.originate(1, P, path=make_path(1))
        engine.run()
        assert not engine.speakers[2].is_suppressed(P, 1)
        assert engine.as_path(3, P) is not None
