"""The continuous-operation service daemon.

Unit tests cover the bounded stage queues (backpressure, deadline
boosts) and the admission controller's degradation ladder; the property
tests at the bottom are the acceptance check for the service PR,
extending ``tests/test_lifeguard_recovery.py``: a service run with the
same seed is byte-identical (event-bus SHA-256 digest) across two
executions, and across a mid-run crash + recover — including one that
crosses rotated journal segments — with zero abandoned repairs.  Seeds
come from ``REPRO_CHAOS_SEEDS`` so CI can sweep a matrix.
"""

import os

import pytest

from repro.control.journal import RepairJournal
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AdmissionController,
    LifeguardService,
    OverloadSignals,
    ServiceConfig,
    ServiceTier,
    Stage,
    StageQueue,
    Watermarks,
)
from repro.workloads.outages import OutageArrivalConfig
from repro.workloads.scenarios import build_deployment

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "3,5,7").split(",")
)


class TestStageQueue:
    def _queue(self, capacity=3, deadline=100.0):
        return StageQueue(Stage.ISOLATE, capacity, deadline)

    def test_fifo_take_respects_budget(self):
        queue = self._queue()
        for name in ("a", "b", "c"):
            assert queue.offer((name, "d", 0.0), now=10.0)
        taken = queue.take(2)
        assert [item.key[0] for item in taken] == ["a", "b"]
        assert len(queue) == 1

    def test_full_queue_refuses_and_counts(self):
        queue = self._queue(capacity=1)
        assert queue.offer(("a", "d", 0.0), now=0.0)
        assert not queue.offer(("b", "d", 0.0), now=0.0)
        assert queue.refusals == 1
        # An already-queued key is accepted in place, not a refusal.
        assert queue.offer(("a", "d", 0.0), now=5.0)
        assert queue.refusals == 1
        assert len(queue) == 1

    def test_requeue_goes_to_tail_with_attempt(self):
        queue = self._queue()
        queue.offer(("a", "d", 0.0), now=0.0)
        queue.offer(("b", "d", 0.0), now=0.0)
        (item,) = queue.take(1)
        queue.requeue(item, now=50.0)
        assert item.attempts == 1
        assert item.deadline == 150.0
        assert [k[0] for k in queue.keys()] == ["b", "a"]

    def test_expire_boosts_breached_items_to_front(self):
        queue = self._queue(deadline=100.0)
        queue.offer(("old", "d", 0.0), now=0.0)
        queue.offer(("new", "d", 0.0), now=90.0)
        breached = queue.expire(now=150.0)
        assert [item.key[0] for item in breached] == ["old"]
        assert queue.timeouts == 1
        # Boosted to the head with a fresh deadline and an attempt.
        assert [k[0] for k in queue.keys()] == ["old", "new"]
        assert breached[0].deadline == 250.0
        assert breached[0].attempts == 1

    def test_occupancy_and_peak(self):
        queue = self._queue(capacity=4)
        queue.offer(("a", "d", 0.0), now=0.0)
        queue.offer(("b", "d", 0.0), now=0.0)
        assert queue.occupancy == 0.5
        queue.take(2)
        assert queue.peak == 2


def _signals(inflight=0, probes=0.0, lag=0, occupancy=0.0):
    return OverloadSignals(
        inflight=inflight,
        probe_utilisation=probes,
        journal_lag=lag,
        queue_occupancy=occupancy,
    )


class TestAdmissionController:
    def _controller(self):
        return AdmissionController(
            Watermarks(max_inflight=8, max_journal_lag=16)
        )

    def test_escalates_one_tier_per_breach(self):
        controller = self._controller()
        assert controller.evaluate(_signals(inflight=9)) is (
            ServiceTier.THROTTLED
        )
        assert controller.evaluate(
            _signals(inflight=9, lag=17)
        ) is ServiceTier.PAUSED
        # Capped at PAUSED no matter how many breaches.
        assert controller.evaluate(
            _signals(inflight=9, lag=17, occupancy=1.0, probes=2.0)
        ) is ServiceTier.PAUSED
        assert controller.transitions == 2

    def test_recovers_one_tier_per_calm_round(self):
        controller = self._controller()
        controller.evaluate(_signals(inflight=9, lag=17, occupancy=1.0))
        assert controller.tier is ServiceTier.PAUSED
        # Not calm (inflight above the low watermark): tier holds.
        assert controller.evaluate(_signals(inflight=5)) is (
            ServiceTier.PAUSED
        )
        for expected in (
            ServiceTier.SHED,
            ServiceTier.THROTTLED,
            ServiceTier.NORMAL,
            ServiceTier.NORMAL,
        ):
            assert controller.evaluate(_signals()) is expected

    def test_budget_scale_and_admitting_per_tier(self):
        controller = self._controller()
        expected = {
            ServiceTier.NORMAL: (1.0, True),
            ServiceTier.THROTTLED: (0.5, True),
            ServiceTier.SHED: (0.25, False),
            ServiceTier.PAUSED: (0.0, False),
        }
        for tier, (scale, admitting) in expected.items():
            controller.restore(tier)
            assert controller.budget_scale() == scale
            assert controller.admitting is admitting


def _run_service(seed, journal_path=None, crash_at=None, max_bytes=None):
    """One tiny-scale service run; returns (report, fingerprints)."""
    obs = EventBus(metrics=MetricsRegistry())
    journal = None
    if journal_path is not None:
        journal = RepairJournal(journal_path, max_bytes=max_bytes)
    scenario = build_deployment(
        scale="tiny", seed=seed, obs=obs, journal=journal
    )
    config = ServiceConfig(
        duration=3600.0,
        arrivals=OutageArrivalConfig(
            first_arrival=1000.0, spacing=900.0, duration=3600.0
        ),
        seed=seed,
        drain=7200.0,
        crash_at=crash_at,
    )
    service = LifeguardService(scenario, config, obs=obs)
    report = service.run()
    fingerprints = [
        r.fingerprint() for r in scenario.lifeguard.records
    ]
    if journal is not None:
        journal.close()
    return report, fingerprints


class TestServiceDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_runs_are_byte_identical(self, seed):
        first, prints_a = _run_service(seed)
        second, prints_b = _run_service(seed)
        assert first.digest == second.digest
        assert prints_a == prints_b
        assert first.repaired >= 1, "property is vacuous without repairs"
        assert first.abandoned == 0
        assert first.drained

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_recover_is_byte_identical(self, seed, tmp_path):
        first, prints_a = _run_service(
            seed,
            journal_path=str(tmp_path / "a.jsonl"),
            crash_at=2500.0,
        )
        second, prints_b = _run_service(
            seed,
            journal_path=str(tmp_path / "b.jsonl"),
            crash_at=2500.0,
        )
        assert first.crashes == 1
        assert first.digest == second.digest
        assert prints_a == prints_b
        # The crash cost downtime, never a repair: everything journaled
        # before the crash was retried or finished after recovery.
        assert first.abandoned == 0
        assert first.repaired >= 1
        assert first.drained

    def test_crash_recover_across_rotated_segments(self, tmp_path):
        seed = SEEDS[0]
        first, prints_a = _run_service(
            seed,
            journal_path=str(tmp_path / "a.jsonl"),
            crash_at=2500.0,
            max_bytes=8192,
        )
        second, prints_b = _run_service(
            seed,
            journal_path=str(tmp_path / "b.jsonl"),
            crash_at=2500.0,
            max_bytes=8192,
        )
        assert first.journal_rotations >= 1
        assert first.digest == second.digest
        assert prints_a == prints_b
        assert first.abandoned == 0
        assert first.drained
