"""The fault-injection layer: plans, the injector, and hardened consumers."""

import ast
import pathlib

import pytest

from repro.dataplane.fib import build_fibs
from repro.errors import ControlError, DegradedError, RetryExhausted
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryBudget,
)
from repro.workloads.scenarios import (
    build_chaos_deployment,
    build_deployment,
)


class TestFaultPlan:
    def test_stochastic_rate_validated(self):
        with pytest.raises(ControlError):
            FaultPlan([FaultSpec(FaultKind.PROBE_LOSS, rate=1.5)])
        with pytest.raises(ControlError):
            FaultPlan([FaultSpec(FaultKind.ATLAS_STALE, rate=-0.1)])

    def test_vp_crash_needs_name(self):
        with pytest.raises(ControlError):
            FaultPlan([FaultSpec(FaultKind.VP_CRASH)])

    def test_session_reset_needs_session_and_time(self):
        with pytest.raises(ControlError):
            FaultPlan([FaultSpec(FaultKind.BGP_SESSION_RESET)])
        with pytest.raises(ControlError):
            FaultPlan(
                [FaultSpec(FaultKind.BGP_SESSION_RESET, session=(1, 2))]
            )

    def test_rate_is_max_of_active_windows(self):
        plan = FaultPlan(
            [
                FaultSpec(FaultKind.PROBE_LOSS, rate=0.1, start=0, end=100),
                FaultSpec(FaultKind.PROBE_LOSS, rate=0.4, start=50, end=60),
            ]
        )
        assert plan.rate(FaultKind.PROBE_LOSS, 55.0) == 0.4
        assert plan.rate(FaultKind.PROBE_LOSS, 70.0) == 0.1
        assert plan.rate(FaultKind.PROBE_LOSS, 200.0) == 0.0

    def test_standard_intensity_bounds(self):
        with pytest.raises(ControlError):
            FaultPlan.standard(1.2)
        with pytest.raises(ControlError):
            FaultPlan.standard(-0.1)

    def test_standard_zero_intensity_is_empty(self):
        plan = FaultPlan.standard(
            0.0,
            crashes=[("helper0", 100.0, 200.0)],
            resets=[(1, 2, 50.0)],
            controller_crashes=[(300.0, 600.0)],
        )
        assert plan.specs == []
        assert plan.is_null

    def test_standard_nonzero_has_all_kinds(self):
        plan = FaultPlan.standard(
            0.2,
            crashes=[("helper0", 1.0, 2.0)],
            resets=[(1, 2, 3.0)],
            controller_crashes=[(4.0, 5.0)],
        )
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == set(FaultKind)
        assert not plan.is_null


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan.standard(0.5, seed=9)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        decisions_a = [a.probe_fault("r", 0.0) for _ in range(200)]
        decisions_b = [b.probe_fault("r", 0.0) for _ in range(200)]
        assert decisions_a == decisions_b
        assert a.stats == b.stats

    def test_zero_rate_consumes_no_randomness(self):
        plan = FaultPlan(
            [FaultSpec(FaultKind.PROBE_LOSS, rate=0.0)], seed=4
        )
        injector = FaultInjector(plan)
        state = injector._rng.getstate()
        for _ in range(50):
            assert injector.probe_fault("r", 0.0) is None
            assert injector.bgp_message_action(1, 2, None) is None
            assert not injector.sentinel_false_negative(0.0)
        assert injector._rng.getstate() == state
        assert injector.stats.total_events == 0

    def test_crashed_source_loses_probes_without_rng(self):
        injector = FaultInjector(FaultPlan())
        injector._crashed_rids.add("r9")
        state = injector._rng.getstate()
        assert injector.probe_fault("r9", 0.0) == "lost"
        assert injector.receiver_down("r9")
        assert not injector.receiver_down("r1")
        assert injector._rng.getstate() == state


class TestRetryBudget:
    def test_spend_until_exhausted(self):
        budget = RetryBudget(limit=2)
        budget.spend()
        budget.spend()
        assert budget.remaining == 0
        with pytest.raises(RetryExhausted) as excinfo:
            budget.spend("isolation", vp="origin", target="1.2.3.4")
        assert excinfo.value.vp == "origin"
        assert excinfo.value.target == "1.2.3.4"
        assert "isolation" in str(excinfo.value)

    def test_degraded_error_context(self):
        error = DegradedError("cannot isolate", vp="helper1", target="x")
        assert "helper1" in str(error)
        assert error.vp == "helper1"


class TestProberRetries:
    class _Scripted:
        """Injector stub whose probe_fault pops a scripted sequence."""

        def __init__(self, faults):
            self.faults = list(faults)
            self.calls = 0

        def probe_fault(self, rid, now):
            self.calls += 1
            return self.faults.pop(0) if self.faults else None

        def receiver_down(self, rid):
            return False

    def _prober(self, dataplane, injector):
        from repro.dataplane.probes import Prober

        return Prober(dataplane, injector=injector, max_retries=2)

    def test_retry_recovers_transient_fault(self, dataplane):
        topo = dataplane.topo
        rids = sorted(r.rid for r in topo.routers())
        src, dst = rids[0], rids[-1]
        injector = self._Scripted(["lost"])
        prober = self._prober(dataplane, injector)
        result = prober.ping(src, topo.router(dst).address)
        assert result.success
        assert prober.retries_used == 1
        assert prober.probes_lost_to_faults == 1

    def test_retries_bounded_then_lost(self, dataplane):
        topo = dataplane.topo
        rids = sorted(r.rid for r in topo.routers())
        src, dst = rids[0], rids[-1]
        injector = self._Scripted(["lost"] * 10)
        prober = self._prober(dataplane, injector)
        result = prober.ping(src, topo.router(dst).address)
        assert not result.success
        assert prober.retries_used == 2  # max_retries, then give up
        assert prober.probes_lost_to_faults == 3
        assert injector.calls == 3


class TestSessionReset:
    def test_unknown_session_is_noop(self, small_internet):
        _graph, _topo, engine = small_internet
        assert engine.reset_session(999998, 999999) is False

    def test_reset_restores_identical_routing(self):
        scenario = build_deployment(scale="tiny", seed=5)
        engine = scenario.engine
        before = {
            asn: {
                str(p): tuple(route.as_path)
                for p, route in speaker.table.loc_rib().items()
            }
            for asn, speaker in engine.speakers.items()
        }
        as_a = scenario.graph.providers(scenario.origin_asn)[0]
        as_b = sorted(scenario.graph.providers(as_a))[0]
        assert engine.reset_session(as_a, as_b) is True
        engine.run()
        after = {
            asn: {
                str(p): tuple(route.as_path)
                for p, route in speaker.table.loc_rib().items()
            }
            for asn, speaker in engine.speakers.items()
        }
        assert before == after
        assert engine.session_resets == 1
        # Forwarding state rebuilt from the converged RIBs is unchanged.
        assert (
            build_fibs(engine).origin_for(scenario.targets[0])
            == scenario.topo.router_by_address(scenario.targets[0]).asn
        )


class TestScheduledFaults:
    def test_vp_crash_and_restore(self):
        scenario, injector = build_chaos_deployment(
            scale="tiny", seed=0, intensity=0.0
        )
        lifeguard = scenario.lifeguard
        injector.plan.add(
            FaultSpec(
                FaultKind.VP_CRASH, vp="helper0", start=100.0, end=200.0
            )
        )
        result = injector.apply(lifeguard, 150.0)
        assert not scenario.vantage_points.is_up("helper0")
        assert lifeguard.mode.value == "degraded"
        assert any("crashed" in event for event in result.events)
        result = injector.apply(lifeguard, 250.0)
        assert scenario.vantage_points.is_up("helper0")
        assert lifeguard.mode.value == "normal"
        assert any("restored" in event for event in result.events)
        assert injector.stats.vp_crashes == 1
        assert injector.stats.vp_restores == 1

    def test_session_reset_fires_once(self):
        scenario, injector = build_chaos_deployment(
            scale="tiny", seed=0, intensity=0.0
        )
        as_a = scenario.graph.providers(scenario.origin_asn)[0]
        as_b = sorted(scenario.graph.providers(as_a))[0]
        injector.plan.add(
            FaultSpec(
                FaultKind.BGP_SESSION_RESET,
                session=(as_a, as_b),
                start=100.0,
                end=100.0,
            )
        )
        first = injector.apply(scenario.lifeguard, 120.0)
        assert first.bgp_changed
        scenario.engine.run()
        second = injector.apply(scenario.lifeguard, 150.0)
        assert not second.bgp_changed
        assert injector.stats.session_resets == 1

    def test_atlas_corruption_keeps_at_least_one_entry(self):
        scenario, injector = build_chaos_deployment(
            scale="tiny", seed=0, intensity=0.0
        )
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        injector.plan.add(
            FaultSpec(FaultKind.ATLAS_STALE, rate=1.0)
        )
        injector.plan.add(
            FaultSpec(FaultKind.ATLAS_PARTIAL, rate=1.0)
        )
        for tick in range(10):
            injector.apply(lifeguard, 1000.0 * tick)
        for reverse in (True, False):
            for vp_name, destination in lifeguard.atlas.pairs(reverse):
                entries = (
                    lifeguard.atlas._reverse
                    if reverse
                    else lifeguard.atlas._forward
                )[(vp_name, destination)]
                assert len(entries) >= 1
                for entry in entries:
                    # Truncation never cuts below min_hops; entries that
                    # were short to begin with are left alone.
                    if not entry.reached:
                        assert len(entry.hops) >= 2


class TestRNGDiscipline:
    """Every stochastic choice in the package must flow through a seeded
    ``random.Random`` instance.  Calls on the module-level RNG would make
    runs irreproducible (and would couple the injector's draws to the
    simulation's), so the audit walks the whole source tree."""

    def test_no_module_level_random_calls(self):
        src = (
            pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        )
        offenders = []
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr != "Random"
                ):
                    offenders.append(
                        f"{path.relative_to(src)}:{node.lineno} "
                        f"random.{func.attr}()"
                    )
        assert offenders == []

    def test_random_imports_only_where_instantiated(self):
        """An ``import random`` without a ``random.Random(...)`` call is
        either dead or a smell that module-level draws are coming."""
        src = (
            pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        )
        for path in sorted(src.rglob("*.py")):
            text = path.read_text()
            tree = ast.parse(text, filename=str(path))
            imports_random = any(
                isinstance(node, ast.Import)
                and any(alias.name == "random" for alias in node.names)
                for node in ast.walk(tree)
            )
            if imports_random:
                assert "random.Random(" in text, (
                    f"{path.relative_to(src)} imports random but never "
                    f"seeds a random.Random instance"
                )


class TestIsolatorDegradation:
    def test_isolate_raises_degraded_when_vp_down(self):
        scenario = build_deployment(scale="tiny", seed=0)
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        scenario.vantage_points.mark_down("origin")
        with pytest.raises(DegradedError) as excinfo:
            lifeguard.isolator.isolate(
                "origin", scenario.targets[0], 100.0
            )
        assert excinfo.value.vp == "origin"

    def test_dead_helpers_discount_confidence(self):
        scenario = build_deployment(scale="tiny", seed=0)
        lifeguard = scenario.lifeguard
        lifeguard.prime_atlas(now=0.0)
        for vp in scenario.vantage_points:
            if vp.name != "origin":
                scenario.vantage_points.mark_down(vp.name)
        result = lifeguard.isolator.isolate(
            "origin", scenario.targets[0], 100.0
        )
        assert result.confidence < 0.5
        assert any("helper" in note for note in result.notes)
