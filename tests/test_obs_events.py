"""Tests for the observability event bus (repro.obs.events)."""

import json

import pytest

from repro.errors import MeasurementError, error_context
from repro.obs.events import (
    DEFAULT_CAPACITY,
    EVENT_SCHEMA_VERSION,
    Event,
    EventBus,
)
from repro.obs.metrics import MetricsRegistry


class TestEvent:
    def test_canonical_is_sorted_and_versioned(self):
        event = Event(
            seq=3, t=12.5, kind="bgp.update-sent",
            component="bgp.engine", subject="10.0.0.0/8",
            fields={"b": 2, "a": 1},
        )
        line = event.canonical()
        doc = json.loads(line)
        assert doc["v"] == EVENT_SCHEMA_VERSION
        assert doc["seq"] == 3
        assert doc["kind"] == "bgp.update-sent"
        # Canonical form: sorted keys, no whitespace.
        assert line == json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        )

    def test_round_trip(self):
        event = Event(
            seq=0, t=1.0, kind="k", component="c",
            subject="s", fields={"x": [1, 2]},
        )
        again = Event.from_json(json.loads(event.canonical()))
        assert again == event

    def test_unjsonable_emit_fields_become_strings(self):
        bus = EventBus()
        event = bus.emit("k", 0.0, "c", obj=object())
        assert isinstance(event.fields["obj"], str)
        json.loads(event.canonical())  # must serialize cleanly


class TestEventBus:
    def test_emit_assigns_monotonic_seq(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("tick", float(i), "test")
        assert [e.seq for e in bus.events()] == list(range(5))
        assert bus.total == 5

    def test_ring_eviction_keeps_digest_over_full_history(self):
        small = EventBus(capacity=4)
        full = EventBus()
        for i in range(10):
            small.emit("tick", float(i), "test", n=i)
            full.emit("tick", float(i), "test", n=i)
        assert len(small.events()) == 4
        assert small.evicted == 6
        assert small.total == 10
        # The digest covers every emission, not just the survivors.
        assert small.digest() == full.digest()

    def test_digest_ignores_capacity_and_sink(self, tmp_path):
        a = EventBus(capacity=2)
        b = EventBus(sink=str(tmp_path / "events.jsonl"))
        for bus in (a, b):
            bus.emit("x", 1.0, "c", k="v")
            bus.emit("y", 2.0, "c")
        b.close()
        assert a.digest() == b.digest()

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(sink=str(path))
        bus.emit("a", 1.0, "c", value=7)
        bus.emit("b", 2.0, "c")
        bus.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [Event.from_json(json.loads(line)) for line in lines]
        assert events[0].fields == {"value": 7}
        assert events[1].kind == "b"

    def test_default_capacity_is_bounded(self):
        assert EventBus().capacity == DEFAULT_CAPACITY

    def test_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("x", 0.0, "c")
        assert len(seen) == 1 and seen[0].kind == "x"

    def test_counts_per_kind(self):
        bus = EventBus()
        bus.emit("a", 0.0, "c")
        bus.emit("a", 1.0, "c")
        bus.emit("b", 2.0, "c")
        assert bus.counts == {"a": 2, "b": 1}

    def test_emit_increments_registry_counter(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.emit("probe.ping", 0.0, "dataplane.prober")
        assert registry.counter_values()["obs.events.probe.ping"] == 1

    def test_observe_routes_to_registry_histogram(self):
        registry = MetricsRegistry()
        bus = EventBus(metrics=registry)
        bus.observe("isolation.elapsed_seconds", 2.5)
        assert (
            registry.histogram_totals()["isolation.elapsed_seconds"] == 2.5
        )

    def test_observe_without_registry_is_noop(self):
        EventBus().observe("anything", 1.0)  # must not raise


class TestErrorEvents:
    def test_error_context_is_sorted_and_typed(self):
        exc = MeasurementError(
            "probe timed out", vp="vp0", target="1.2.3.4",
            component="measure.monitor", sim_time=42.0,
        )
        ctx = error_context(exc)
        assert list(ctx) == sorted(ctx)
        assert ctx["type"] == "MeasurementError"
        assert ctx["component"] == "measure.monitor"
        assert ctx["sim_time"] == 42.0
        assert ctx["subject"] == "vp0|1.2.3.4"

    def test_error_context_plain_exception(self):
        ctx = error_context(ValueError("nope"))
        assert ctx == {"message": "nope", "type": "ValueError"}

    def test_emit_error(self):
        bus = EventBus()
        exc = MeasurementError("boom", vp="vp0", target="t")
        bus.emit_error(
            "isolation.failed", 5.0, "isolation.isolator", exc,
            subject="vp0|t",
        )
        (event,) = bus.events()
        assert event.kind == "isolation.failed"
        assert event.fields["error"]["type"] == "MeasurementError"
        assert event.fields["error"]["vp"] == "vp0"


class TestContextualErrors:
    def test_message_keeps_legacy_suffix(self):
        exc = MeasurementError("probe lost", vp="vp1", target="9.9.9.9")
        assert "[vp=vp1, target=9.9.9.9]" in str(exc)

    def test_context_empty_without_kwargs(self):
        with pytest.raises(MeasurementError) as info:
            raise MeasurementError("bare")
        assert info.value.context == {}
