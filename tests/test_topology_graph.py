"""Unit tests for the AS graph, relationships and generator."""


import pytest

from repro.errors import TopologyError
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.generate import (
    InternetShape,
    generate_internet,
    generate_multihomed_origin,
    prefix_for_asn,
)
from repro.topology.relationships import (
    Relationship,
    is_valley_free,
    local_pref_for,
    may_export,
)
from repro.topology.serialize import dumps_as_graph, loads_as_graph


class TestRelationships:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING

    def test_local_pref_ordering(self):
        assert (
            local_pref_for(Relationship.CUSTOMER)
            > local_pref_for(Relationship.PEER)
            > local_pref_for(Relationship.PROVIDER)
        )

    def test_export_rules(self):
        # Customer routes go everywhere.
        assert may_export(Relationship.CUSTOMER, Relationship.PEER)
        assert may_export(Relationship.CUSTOMER, Relationship.PROVIDER)
        # Peer/provider routes only to customers.
        assert may_export(Relationship.PEER, Relationship.CUSTOMER)
        assert not may_export(Relationship.PEER, Relationship.PEER)
        assert not may_export(Relationship.PROVIDER, Relationship.PEER)
        assert not may_export(Relationship.PROVIDER, Relationship.PROVIDER)

    def test_valley_free_sequences(self):
        up, flat, down = (
            Relationship.PROVIDER,
            Relationship.PEER,
            Relationship.CUSTOMER,
        )
        assert is_valley_free([up, up, flat, down, down])
        assert is_valley_free([down, down])
        assert is_valley_free([up])
        assert not is_valley_free([down, up])          # valley
        assert not is_valley_free([flat, flat])        # two peer links
        assert not is_valley_free([flat, up])          # climb after peak


class TestASGraph:
    @pytest.fixture
    def graph(self):
        g = ASGraph()
        g.add_as(1, tier=1)
        g.add_as(2, tier=2)
        g.add_as(3, tier=3, prefixes=[Prefix("10.3.0.0/16")])
        g.add_link(2, 1, Relationship.PROVIDER)
        g.add_link(3, 2, Relationship.PROVIDER)
        return g

    def test_relationship_symmetry(self, graph):
        assert graph.relationship(2, 1) is Relationship.PROVIDER
        assert graph.relationship(1, 2) is Relationship.CUSTOMER

    def test_providers_customers(self, graph):
        assert graph.providers(3) == [2]
        assert graph.customers(1) == [2]
        assert graph.peers(1) == []

    def test_stub_detection(self, graph):
        assert graph.is_stub(3)
        assert not graph.is_stub(1)
        assert set(graph.transit_ases()) == {1, 2}

    def test_customer_cone(self, graph):
        assert graph.customer_cone(1) == {1, 2, 3}
        assert graph.customer_cone(3) == {3}

    def test_prefix_origin(self, graph):
        assert graph.origin_of(Prefix("10.3.0.0/16")) == 3
        assert graph.origin_of(Prefix("10.9.0.0/16")) is None

    def test_duplicate_asn_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_as(1)

    def test_duplicate_link_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_link(1, 2, Relationship.PEER)

    def test_self_link_rejected(self, graph):
        with pytest.raises(TopologyError):
            graph.add_link(1, 1, Relationship.PEER)

    def test_remove_as(self, graph):
        graph.remove_as(2)
        assert 2 not in graph
        assert graph.providers(3) == []
        graph.validate()

    def test_remove_link(self, graph):
        graph.remove_link(3, 2)
        assert not graph.has_link(3, 2)
        with pytest.raises(TopologyError):
            graph.remove_link(3, 2)

    def test_copy_independent(self, graph):
        clone = graph.copy()
        clone.remove_as(3)
        assert 3 in graph
        graph.validate()
        clone.validate()

    def test_validate_passes(self, graph):
        graph.validate()


class TestGenerator:
    def test_shape_counts(self):
        shape = InternetShape(num_tier1=4, num_tier2=10, num_stubs=30)
        graph = generate_internet(shape, seed=1)
        assert len(graph) == 44
        tiers = {}
        for node in graph.nodes():
            tiers.setdefault(node.tier, 0)
            tiers[node.tier] += 1
        assert tiers == {1: 4, 2: 10, 3: 30}

    def test_tier1_clique(self):
        graph = generate_internet(
            InternetShape(num_tier1=5, num_tier2=5, num_stubs=5), seed=2
        )
        for a in range(1, 6):
            for b in range(a + 1, 6):
                assert graph.relationship(a, b) is Relationship.PEER

    def test_everyone_reaches_the_clique(self):
        graph = generate_internet(
            InternetShape(num_tier1=3, num_tier2=8, num_stubs=20), seed=3
        )
        tier1 = {n.asn for n in graph.nodes() if n.tier == 1}
        for node in graph.nodes():
            if node.tier == 1:
                continue
            # Follow provider links upward; must hit the clique.
            frontier, seen = {node.asn}, set()
            reached = False
            while frontier and not reached:
                current = frontier.pop()
                seen.add(current)
                for provider in graph.providers(current):
                    if provider in tier1:
                        reached = True
                        break
                    if provider not in seen:
                        frontier.add(provider)
            assert reached, f"AS{node.asn} cannot reach tier-1"

    def test_deterministic_for_seed(self):
        a = generate_internet(seed=7)
        b = generate_internet(seed=7)
        assert sorted(a.links()) == sorted(b.links())

    def test_multihomed_origin_attachment(self):
        graph = generate_internet(
            InternetShape(num_tier1=3, num_tier2=10, num_stubs=10), seed=4
        )
        origin = generate_multihomed_origin(graph, num_providers=5, seed=4)
        assert len(graph.providers(origin)) == 5
        assert graph.node(origin).prefixes == [prefix_for_asn(origin)]

    def test_prefix_for_asn_is_unique_per_asn(self):
        assert prefix_for_asn(1) != prefix_for_asn(2)
        assert prefix_for_asn(42).contains(prefix_for_asn(42).address(7))


class TestSerialization:
    def test_roundtrip(self):
        graph = generate_internet(
            InternetShape(num_tier1=3, num_tier2=6, num_stubs=12), seed=5
        )
        text = dumps_as_graph(graph)
        loaded = loads_as_graph(text)
        assert sorted(loaded.links()) == sorted(graph.links())
        assert {n.asn: n.tier for n in loaded.nodes()} == {
            n.asn: n.tier for n in graph.nodes()
        }

    def test_bare_caida_file(self):
        text = "# caida\n1|2|-1\n2|3|0\n"
        graph = loads_as_graph(text)
        # 1|2|-1: 1 is provider of 2.
        assert graph.relationship(2, 1) is Relationship.PROVIDER
        assert graph.relationship(2, 3) is Relationship.PEER

    def test_malformed_line_raises(self):
        with pytest.raises(TopologyError):
            loads_as_graph("1|2|9\n")
