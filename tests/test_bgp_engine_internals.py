"""Engine edge cases: clock control, MRAI batching, error handling."""

import pytest

from repro.bgp.engine import BGPEngine, EngineConfig
from repro.bgp.messages import make_path
from repro.errors import SimulationError
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship

P = Prefix("10.90.0.0/16")


def chain(n=4):
    g = ASGraph()
    for asn in range(1, n + 1):
        g.add_as(asn)
    g.assign_prefix(1, P)
    for asn in range(1, n):
        g.add_link(asn, asn + 1, Relationship.PROVIDER)
    return g


class TestClock:
    def test_advance_to_moves_clock(self):
        engine = BGPEngine(chain())
        engine.originate(1, P)
        engine.run()
        t = engine.now
        engine.advance_to(t + 100.0)
        assert engine.now == t + 100.0

    def test_advance_backwards_rejected(self):
        engine = BGPEngine(chain())
        engine.originate(1, P)
        engine.run()
        with pytest.raises(SimulationError):
            engine.advance_to(engine.now - 1.0)

    def test_advance_with_pending_events_rejected(self):
        engine = BGPEngine(chain())
        engine.originate(1, P)  # events queued, not yet run
        with pytest.raises(SimulationError):
            engine.advance_to(engine.now + 100.0)

    def test_run_until_leaves_pending_events(self):
        engine = BGPEngine(chain(6))
        engine.originate(1, P)
        engine.run(until=engine.now + 0.001)
        # The far end cannot have converged in a millisecond.
        assert engine.as_path(6, P) is None
        engine.run()
        assert engine.as_path(6, P) is not None


class TestMRAI:
    def test_rapid_changes_batched_by_mrai(self):
        """Two announcement changes in quick succession reach a neighbor
        as at most two updates, the second delayed by the MRAI."""
        engine = BGPEngine(chain(3), EngineConfig(mrai=30.0, seed=1))
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        sent_before = engine.updates_sent.get((2, 3), 0)
        t0 = engine.now
        # Flip the announcement twice within one MRAI window.
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[99]))
        engine.run(until=t0 + 1.0)
        engine.originate(1, P, path=make_path(1, prepend=3))
        settle = engine.run()
        sent_after = engine.updates_sent.get((2, 3), 0)
        assert sent_after - sent_before <= 2
        # The batched second update had to wait out the MRAI.
        assert settle - t0 >= 10.0

    def test_withdrawals_not_rate_limited(self):
        engine = BGPEngine(chain(3), EngineConfig(mrai=30.0, seed=1))
        engine.originate(1, P)
        engine.run()
        t0 = engine.now
        engine.withdraw_origin(1, P)
        settle = engine.run()
        # Withdrawals propagate immediately (no 30 s waits).
        assert settle - t0 < 5.0
        assert engine.as_path(3, P) is None


class TestErrorPaths:
    def test_unknown_scale_for_speaker_lookup(self):
        engine = BGPEngine(chain())
        with pytest.raises(KeyError):
            engine.speakers[999]

    def test_update_counters_monotonic(self):
        engine = BGPEngine(chain())
        engine.originate(1, P)
        engine.run()
        first = engine.total_updates_sent()
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert engine.total_updates_sent() > first

    def test_changes_since_filters_by_time(self):
        engine = BGPEngine(chain())
        engine.originate(1, P)
        engine.run()
        cutoff = engine.now
        assert engine.changes_since(cutoff) == []
        engine.originate(1, P, path=make_path(1, prepend=3))
        engine.run()
        assert engine.changes_since(cutoff)
