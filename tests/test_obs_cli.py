"""Tests for the observability CLI surface and exporters.

Covers ``repro trace`` (timeline rendering, artifact writing, the
``--check-determinism`` gate), ``--metrics-out`` on experiment commands,
and the cross-worker event-log digest equality the subsystem guarantees.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.events import EventBus
from repro.obs.export import (
    TRACE_DIR_ENV,
    demo_event_digests,
    event_log_digest,
    prometheus_text,
    read_events_jsonl,
    resolve_trace_dir,
    write_events_jsonl,
)
from repro.obs.metrics import MetricsRegistry

#: Shortened demo horizon shared by the determinism checks (CI-cheap).
SHORT_DEMO = dict(fail_start=1000.0, fail_end=2400.0, end=3000.0)


class TestParser:
    def test_trace_subcommand(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.check_determinism == 0
        assert args.events_out is None
        assert args.metrics_out is None

    def test_trace_flags(self):
        args = build_parser().parse_args([
            "trace", "--check-determinism", "4",
            "--events-out", "e.jsonl", "--metrics-out", "m.json",
            "--trace-dir", "out",
        ])
        assert args.check_determinism == 4
        assert args.events_out == "e.jsonl"
        assert args.metrics_out == "m.json"
        assert args.trace_dir == "out"

    def test_metrics_out_on_experiment_commands(self):
        parser = build_parser()
        for command in ("fig6", "efficacy", "accuracy", "chaos", "bench"):
            args = parser.parse_args([command, "--metrics-out", "m.json"])
            assert args.metrics_out == "m.json"


class TestTraceCommand:
    def test_renders_repair_timeline(self, capsys):
        assert main(["--seed", "0", "trace"]) == 0
        out = capsys.readouterr().out
        assert "final state: unpoisoned" in out
        for phase in ("detection", "isolation", "poison",
                      "convergence", "verification", "unpoison"):
            assert phase in out
        assert "bgp updates" in out
        assert "digest" in out

    def test_writes_artifacts(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main([
            "--seed", "0", "trace",
            "--events-out", str(events),
            "--metrics-out", str(metrics),
        ]) == 0
        replayed = read_events_jsonl(str(events))
        assert replayed, "event log should not be empty"
        assert replayed[0].kind == "control.announce-baseline"
        snapshot = json.loads(metrics.read_text())
        assert "counters" in snapshot and "histograms" in snapshot
        assert snapshot["counters"]["obs.events.control.state"] > 0

    def test_trace_dir_env_names_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        assert main(["--seed", "3", "trace"]) == 0
        assert (tmp_path / "trace-seed3-events.jsonl").exists()
        assert (tmp_path / "trace-seed3-metrics.json").exists()

    def test_check_determinism_gate(self, capsys):
        assert main([
            "--seed", "0", "trace", "--check-determinism", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out and "MISMATCH" not in out


class TestMetricsOut:
    def test_experiment_writes_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main([
            "accuracy", "--scale", "tiny", "--cases", "2",
            "--metrics-out", str(path),
        ]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"], "experiment should count something"
        # The legacy RunStats counters are what landed in the snapshot.
        assert any(
            name.startswith("accuracy.") for name in snapshot["counters"]
        )
        for blob in snapshot["histograms"].values():
            assert blob["buckets"][-1][0] == "+Inf"
            assert blob["buckets"][-1][1] == blob["count"]


class TestCrossWorkerDeterminism:
    def test_digests_identical_at_workers_1_and_4(self):
        seeds = (0, 1)
        serial = demo_event_digests(seeds, workers=1, **SHORT_DEMO)
        parallel = demo_event_digests(seeds, workers=4, **SHORT_DEMO)
        assert serial == parallel
        # Distinct seeds tell different stories.
        assert serial[0] != serial[1]


class TestExportHelpers:
    def test_event_log_digest_matches_bus(self, tmp_path):
        bus = EventBus()
        bus.emit("a", 1.0, "c", x=1)
        bus.emit("b", 2.0, "c")
        path = tmp_path / "log.jsonl"
        assert write_events_jsonl(bus.events(), str(path)) == 2
        assert event_log_digest(read_events_jsonl(str(path))) == (
            bus.digest()
        )

    def test_resolve_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        assert resolve_trace_dir(None) is None
        target = tmp_path / "artifacts"
        assert resolve_trace_dir(str(target)) == str(target)
        assert target.is_dir()
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "from-env"))
        assert resolve_trace_dir(None) == str(tmp_path / "from-env")

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.inc("obs.events.probe.ping", 3)
        registry.set_gauge("poisons.active", 1)
        registry.observe("repair.convergence_seconds", 52.8)
        text = prometheus_text(registry)
        assert "# TYPE repro_obs_events_probe_ping counter" in text
        assert "repro_obs_events_probe_ping 3" in text
        assert "repro_poisons_active 1" in text
        assert 'repro_repair_convergence_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_repair_convergence_seconds_sum 52.8" in text

    def test_prometheus_rejects_unknown_payload(self):
        with pytest.raises(TypeError):
            prometheus_text(42)
