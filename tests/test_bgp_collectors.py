"""Tests for route collectors and convergence measurement."""

import pytest

from repro.bgp.collectors import RouteCollector, summarize_convergence
from repro.bgp.engine import BGPEngine
from repro.bgp.messages import make_path
from repro.net.addr import Prefix
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import Relationship

P = Prefix("10.60.0.0/16")


@pytest.fixture()
def world():
    """Diamond: E(5) can reach origin 1 via A(6) or via D(4)-C(3)-B(2)."""
    g = ASGraph()
    for asn in range(1, 7):
        g.add_as(asn)
    g.assign_prefix(1, P)
    g.add_link(1, 2, Relationship.PROVIDER)
    g.add_link(2, 3, Relationship.PROVIDER)
    g.add_link(2, 6, Relationship.PROVIDER)
    g.add_link(4, 3, Relationship.PROVIDER)
    g.add_link(5, 4, Relationship.PROVIDER)
    g.add_link(5, 6, Relationship.PROVIDER)
    engine = BGPEngine(g)
    collector = RouteCollector(engine, peers={3, 4, 5, 6})
    engine.originate(1, P, path=make_path(1, prepend=3))
    engine.run()
    return engine, collector


class TestCollector:
    def test_unknown_peer_rejected(self, world):
        engine, _collector = world
        with pytest.raises(ValueError):
            RouteCollector(engine, peers={999})

    def test_updates_recorded_in_time_order(self, world):
        engine, collector = world
        updates = collector.updates(prefix=P)
        assert updates
        times = [u.time for u in updates]
        assert times == sorted(times)
        assert {u.peer for u in updates} <= {3, 4, 5, 6}

    def test_peers_using(self, world):
        engine, collector = world
        users = collector.peers_using(P, 6)
        assert 5 in users  # E prefers the short path via A(6)

    def test_withdrawal_appears_as_none_path(self, world):
        engine, collector = world
        t0 = engine.now
        engine.withdraw_origin(1, P)
        engine.run()
        updates = collector.updates(prefix=P, since=t0)
        assert any(u.is_withdrawal for u in updates)

    def test_convergence_after_poison(self, world):
        engine, collector = world
        affected = set(collector.peers_using(P, 6))
        t0 = engine.now
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        records = collector.convergence_after(t0, P, affected=affected)
        assert records
        by_peer = {r.peer: r for r in records}
        # The poisoned AS itself loses its route (withdrawal counts as
        # its final update).
        assert 6 in by_peer
        assert by_peer[6].final_path is None
        # E was affected and rerouted.
        assert by_peer[5].was_affected
        assert by_peer[5].final_path is not None

    def test_global_convergence_time(self, world):
        engine, collector = world
        t0 = engine.now
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        span = collector.global_convergence_time(t0, P)
        assert span is not None and span >= 0.0

    def test_no_updates_returns_none(self, world):
        engine, collector = world
        assert collector.global_convergence_time(engine.now + 999, P) is None


class TestSummaries:
    def test_summarize_empty(self):
        summary = summarize_convergence([])
        assert summary["peers"] == 0
        assert summary["instant_fraction"] == 1.0

    def test_summarize_counts(self, world):
        engine, collector = world
        t0 = engine.now
        engine.originate(1, P, path=make_path(1, prepend=3, poison=[6]))
        engine.run()
        records = collector.convergence_after(t0, P)
        summary = summarize_convergence(records)
        assert summary["peers"] == len(records)
        assert 0.0 <= summary["instant_fraction"] <= 1.0
