"""End-to-end tests: the full LIFEGUARD loop repairing an injected outage."""

import pytest

from repro.control.lifeguard import RepairState
from repro.control.sentinel import covering_sentinel, unused_half
from repro.dataplane.failures import ASForwardingFailure
from repro.isolation.direction import FailureDirection
from repro.workloads.scenarios import build_deployment


@pytest.fixture(scope="module")
def scenario():
    return build_deployment(scale="tiny", seed=5, num_providers=2)


def _reverse_transit_for(scenario, target):
    """First transit AS on the reverse path target -> origin VP."""
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    assert walk.delivered, "scenario must start healthy"
    hops = walk.as_level_hops(topo)
    # Skip the target's own AS; also skip the origin's AS at the end.
    transits = [a for a in hops[1:-1] if a != scenario.origin_asn]
    assert transits, "need a transit AS to break"
    return transits[0]


class TestScenarioWiring:
    def test_monitored_targets_initially_reachable(self, scenario):
        lifeguard = scenario.lifeguard
        vp = scenario.vantage_points.get("origin")
        for target in scenario.targets:
            assert lifeguard.prober.ping(vp.rid, target).success

    def test_sentinel_covers_production(self, scenario):
        sentinel = scenario.lifeguard.sentinel_manager.sentinel
        assert scenario.production_prefix.is_more_specific_of(sentinel)

    def test_sentinel_unused_half_is_dark(self, scenario):
        sentinel = scenario.lifeguard.sentinel_manager.sentinel
        half = unused_half(scenario.production_prefix, sentinel)
        assert scenario.graph.origin_of(half) is None


class TestEndToEndRepair:
    def test_full_repair_cycle(self, scenario):
        lifeguard = scenario.lifeguard
        target = scenario.targets[0]
        bad_asn = _reverse_transit_for(scenario, target)
        sentinel = lifeguard.sentinel_manager.sentinel

        # Prime the atlas while healthy, then break the reverse path for
        # two hours starting at t=1000.
        lifeguard.prime_atlas(now=0.0)
        failure = ASForwardingFailure(
            asn=bad_asn, toward=sentinel, start=1000.0, end=8200.0
        )
        lifeguard.dataplane.failures.add(failure)

        lifeguard.run(start=30.0, end=9600.0)

        poisoned = [
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        ]
        assert poisoned, "LIFEGUARD never poisoned the failing AS"
        record = poisoned[0]
        assert record.isolation.direction is FailureDirection.REVERSE
        assert record.isolation.blamed_asn == bad_asn
        # Decision respected the persistence threshold.
        assert record.poison_time - record.outage.start >= 300.0
        # Poisoning restored connectivity (monitor saw the outage end).
        assert record.outage.end is not None
        assert record.outage.end < failure.end
        # The sentinel detected the repair and the poison was withdrawn.
        assert record.state is RepairState.UNPOISONED
        assert record.repair_detected_time is not None
        assert record.repair_detected_time >= failure.end
        assert record.convergence_seconds is not None
        assert record.convergence_seconds < 600.0

    def test_short_outage_not_poisoned(self, scenario):
        lifeguard = scenario.lifeguard
        target = scenario.targets[1]
        bad_asn = _reverse_transit_for(scenario, target)
        sentinel = lifeguard.sentinel_manager.sentinel
        start = lifeguard.engine.now + 600.0
        # A 3-minute blip: below the persistence threshold.
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=sentinel,
                start=start,
                end=start + 180.0,
            )
        )
        before = len(lifeguard.poisoned_records())
        lifeguard.run(start=start, end=start + 1200.0)
        new_poisons = [
            r
            for r in lifeguard.poisoned_records()[before:]
            if r.outage.start >= start - 1.0
        ]
        assert not new_poisons


class TestSentinelHelpers:
    def test_covering_sentinel_is_one_bit_shorter(self, scenario):
        production = scenario.production_prefix
        sentinel = covering_sentinel(production)
        assert sentinel.length == production.length - 1
        assert production.is_more_specific_of(sentinel)

    def test_unused_half_disjoint_from_production(self, scenario):
        production = scenario.production_prefix
        sentinel = covering_sentinel(production)
        half = unused_half(production, sentinel)
        assert half != production
        assert half.is_more_specific_of(sentinel)
