"""Unit tests for repro.net.addr."""

import pytest

from repro.errors import AddressError
from repro.net.addr import Address, Prefix


class TestAddress:
    def test_parse_dotted_quad(self):
        assert Address("10.1.2.3").value == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_roundtrip_string(self):
        for text in ["0.0.0.0", "255.255.255.255", "192.168.1.1"]:
            assert str(Address(text)) == text

    def test_int_construction(self):
        assert str(Address(0x0A000001)) == "10.0.0.1"

    def test_equality_with_int(self):
        assert Address("10.0.0.1") == 0x0A000001

    def test_ordering(self):
        assert Address("10.0.0.1") < Address("10.0.0.2")
        assert Address("9.255.255.255") <= Address("10.0.0.0")

    def test_hashable(self):
        assert len({Address("1.2.3.4"), Address("1.2.3.4")}) == 1

    def test_add_offset(self):
        assert Address("10.0.0.1") + 5 == Address("10.0.0.6")

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4"]
    )
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(AddressError):
            Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            Address(1 << 32)
        with pytest.raises(AddressError):
            Address(-1)


class TestPrefix:
    def test_parse_slash_notation(self):
        p = Prefix("10.0.0.0/8")
        assert p.length == 8
        assert p.base == 10 << 24

    def test_base_and_length_construction(self):
        assert Prefix(10 << 24, 8) == Prefix("10.0.0.0/8")

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.1/8")

    def test_contains_address(self):
        p = Prefix("10.1.0.0/16")
        assert "10.1.2.3" in p
        assert "10.2.0.0" not in p

    def test_contains_subprefix(self):
        outer = Prefix("10.0.0.0/8")
        assert Prefix("10.1.0.0/16") in outer
        assert Prefix("11.0.0.0/16") not in outer
        assert Prefix("0.0.0.0/0") not in outer

    def test_num_addresses(self):
        assert Prefix("10.0.0.0/24").num_addresses == 256
        assert Prefix("10.0.0.4/30").num_addresses == 4

    def test_address_offset(self):
        p = Prefix("10.0.0.0/24")
        assert p.address(1) == Address("10.0.0.1")
        with pytest.raises(AddressError):
            p.address(256)

    def test_subnets(self):
        subs = list(Prefix("10.0.0.0/30").subnets(31))
        assert subs == [Prefix("10.0.0.0/31"), Prefix("10.0.0.2/31")]

    def test_supernet(self):
        assert Prefix("10.1.0.0/16").supernet(8) == Prefix("10.0.0.0/8")
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/8").supernet(16)

    def test_is_more_specific_of(self):
        assert Prefix("10.1.0.0/16").is_more_specific_of(Prefix("10.0.0.0/8"))
        assert not Prefix("10.0.0.0/8").is_more_specific_of(
            Prefix("10.0.0.0/8")
        )

    def test_str_roundtrip(self):
        assert str(Prefix("172.16.0.0/12")) == "172.16.0.0/12"
        assert Prefix(str(Prefix("1.0.0.0/8"))) == Prefix("1.0.0.0/8")

    def test_bad_lengths(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/33")
        with pytest.raises(AddressError):
            Prefix("10.0.0.0")
