"""Tests for ping/traceroute/spoofed probes and reverse traceroute."""

import pytest

from repro.dataplane.failures import ASForwardingFailure, RouterFailure
from repro.dataplane.probes import Prober
from repro.dataplane.reverse_traceroute import ReverseTracerouteTool
from repro.topology.generate import prefix_for_asn


def _stub_routers(graph, topo, count):
    stubs = [n.asn for n in graph.nodes() if n.tier == 3]
    return [topo.routers_of(asn)[0] for asn in stubs[:count]]


def _helper_avoiding(prober, graph, topo, dst, avoid_asn, exclude):
    """A stub vantage point whose reverse path from *dst* skips *avoid_asn*."""
    for node in graph.nodes():
        if node.tier != 3:
            continue
        rid = topo.routers_of(node.asn)[0]
        if rid in exclude:
            continue
        walk = prober.dataplane.forward(dst, topo.router(rid).address)
        if walk.delivered and avoid_asn not in walk.as_level_hops(topo):
            return rid
    pytest.fail(
        f"no stub avoids AS{avoid_asn} on the reverse path from {dst}"
    )


@pytest.fixture()
def prober(dataplane):
    return Prober(dataplane)


class TestPing:
    def test_ping_success(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        assert prober.ping(src, topo.router(dst).address).success

    def test_ping_counts_probes(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        prober.ping(src, topo.router(dst).address)
        assert prober.probes_sent == 1

    def test_ping_fails_on_forward_failure(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        walk = prober.dataplane.forward(src, topo.router(dst).address)
        transit = walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=transit, toward=prefix_for_asn(topo.router(dst).asn)
            )
        )
        assert not prober.ping(src, topo.router(dst).address).success

    def test_ping_fails_on_reverse_failure(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        dst_addr = topo.router(dst).address
        # Break the reverse direction only: some transit AS on the return
        # path blackholes traffic toward the *source* prefix.
        reverse_walk = prober.dataplane.forward(
            dst, topo.router(src).address
        )
        reverse_transit = reverse_walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=reverse_transit,
                toward=prefix_for_asn(topo.router(src).asn),
            )
        )
        assert not prober.ping(src, dst_addr).success

    def test_spoofed_ping_sidesteps_reverse_failure(
        self, small_internet, prober
    ):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        dst_addr = topo.router(dst).address
        reverse_walk = prober.dataplane.forward(dst, topo.router(src).address)
        reverse_transit = reverse_walk.as_level_hops(topo)[1]
        helper = _helper_avoiding(
            prober, graph, topo, dst, reverse_transit, exclude=(src, dst)
        )
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=reverse_transit,
                toward=prefix_for_asn(topo.router(src).asn),
            )
        )
        # Normal ping fails; spoofed-as-helper succeeds: forward path works
        # and the reply reaches the helper, isolating a reverse failure.
        assert not prober.ping(src, dst_addr).success
        assert prober.ping(src, dst_addr, receive_at=helper).success

    def test_unresponsive_router_never_answers(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        prober.dataplane.topo.router(dst).responds_to_ping = False
        try:
            assert not prober.ping(src, topo.router(dst).address).success
        finally:
            prober.dataplane.topo.router(dst).responds_to_ping = True


class TestTraceroute:
    def test_complete_traceroute(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        result = prober.traceroute(src, topo.router(dst).address)
        assert result.reached
        assert result.hops[-1] == topo.router(dst).address
        walk = prober.dataplane.forward(src, topo.router(dst).address)
        assert len(result.hops) == len(walk.hops) - 1

    def test_traceroute_stops_at_silent_failure(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        walk = prober.dataplane.forward(src, topo.router(dst).address)
        victim = walk.hops[len(walk.hops) // 2]
        prober.dataplane.failures.add(RouterFailure(rid=victim))
        result = prober.traceroute(src, topo.router(dst).address)
        assert not result.reached
        # The last responding hop precedes the victim.
        victim_index = walk.hops.index(victim)
        last = result.last_responsive()
        if last is not None:
            responding_rids = [
                prober.dataplane.topo.router_by_address(h).rid
                for h in result.responding_hops()
            ]
            assert all(
                walk.hops.index(r) < victim_index for r in responding_rids
            )

    def test_traceroute_misleads_on_reverse_failure(
        self, small_internet, prober
    ):
        """The §5.3 motivation: a reverse failure truncates traceroute at
        the reachability horizon even though the forward path is fine."""
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        dst_addr = topo.router(dst).address
        reverse_walk = prober.dataplane.forward(dst, topo.router(src).address)
        reverse_transit = reverse_walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=reverse_transit,
                toward=prefix_for_asn(topo.router(src).asn),
            )
        )
        result = prober.traceroute(src, dst_addr)
        assert not result.reached  # looks like a forward-path problem...
        forward_ok = prober.dataplane.forward(src, dst_addr).delivered
        assert forward_ok  # ...but the forward path actually works

    def test_spoofed_traceroute_reveals_forward_path(
        self, small_internet, prober
    ):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        dst_addr = topo.router(dst).address
        reverse_walk = prober.dataplane.forward(dst, topo.router(src).address)
        reverse_transit = reverse_walk.as_level_hops(topo)[1]
        helper = _helper_avoiding(
            prober, graph, topo, dst, reverse_transit, exclude=(src, dst)
        )
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=reverse_transit,
                toward=prefix_for_asn(topo.router(src).asn),
            )
        )
        spoofed = prober.traceroute(src, dst_addr, receive_at=helper)
        assert spoofed.reached


class TestReverseTraceroute:
    def test_measures_working_reverse_path(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        tool = ReverseTracerouteTool(prober)
        path = tool.measure(src, topo.router(dst).address)
        assert path is not None
        truth = prober.dataplane.forward(dst, topo.router(src).address)
        assert path.hops == [
            topo.router(rid).address for rid in truth.hops
        ]

    def test_unmeasurable_during_reverse_failure(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        reverse_walk = prober.dataplane.forward(dst, topo.router(src).address)
        reverse_transit = reverse_walk.as_level_hops(topo)[1]
        prober.dataplane.failures.add(
            ASForwardingFailure(
                asn=reverse_transit,
                toward=prefix_for_asn(topo.router(src).asn),
            )
        )
        tool = ReverseTracerouteTool(prober)
        assert tool.measure(src, topo.router(dst).address) is None

    def test_probe_accounting(self, small_internet, prober):
        graph, topo, _ = small_internet
        src, dst = _stub_routers(graph, topo, 2)
        tool = ReverseTracerouteTool(prober)
        tool.measure(src, topo.router(dst).address)
        # 1 ping + 10 amortized option probes.
        assert prober.probes_sent == 11
