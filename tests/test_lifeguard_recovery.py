"""Crash recovery, the poison ledger, and degraded-mode deferrals.

The property test at the bottom is the PR's acceptance check: a controller
killed between POISONED and UNPOISONED and rebuilt from its (serialized
and reloaded) write-ahead journal must finish with byte-identical
RepairRecord state to an uninterrupted run.  Seeds come from
``REPRO_CHAOS_SEEDS`` (comma-separated) so CI can sweep a matrix.
"""

import json
import os

import pytest

from repro.control.journal import RepairJournal
from repro.control.lifeguard import Lifeguard, RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.measure.monitor import OutageRecord
from repro.workloads.outages import generate_outage_trace
from repro.workloads.scenarios import build_deployment

SEEDS = tuple(
    int(s)
    for s in os.environ.get("REPRO_CHAOS_SEEDS", "3,5,7").split(",")
)


def _reverse_transit_for(scenario, target):
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    origin_rid = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_rid).address
    )
    assert walk.delivered, "scenario must start healthy"
    return next(
        a
        for a in walk.as_level_hops(topo)[1:-1]
        if a != scenario.origin_asn
    )


class TestConcurrentPoisonLedger:
    """Regression: finishing one repair must not withdraw another's poison
    (the pre-ledger OriginController clobbered the whole announcement)."""

    def test_unpoisoning_one_record_keeps_the_other(self):
        scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
        lifeguard = scenario.lifeguard
        transits = [
            asn
            for asn in sorted(scenario.graph.transit_ases())
            if asn != scenario.origin_asn
        ]
        asn_a, asn_b = transits[0], transits[1]
        records = []
        for index, asn in enumerate((asn_a, asn_b)):
            outage = OutageRecord(
                vp_name="origin",
                destination=scenario.targets[index],
                start=1000.0 + index * 100.0,
                detected=1110.0 + index * 100.0,
            )
            record = lifeguard._record_for(outage)
            lifeguard.origin.poison(
                [asn], key=lifeguard._ledger_key(record.key)
            )
            record.state = RepairState.POISONED
            record.poisoned_asn = asn
            record.poison_time = 1200.0 + index * 100.0
            records.append(record)
        assert set(lifeguard.origin.currently_poisoned) == {asn_a, asn_b}

        lifeguard.unpoison(records[0], now=2000.0)

        assert records[0].state is RepairState.UNPOISONED
        assert records[1].state is RepairState.POISONED
        # The concurrent repair's poison is still on the announcement.
        assert lifeguard.origin.currently_poisoned == (asn_b,)
        active = lifeguard.origin.active_poisons()
        assert lifeguard._ledger_key(records[1].key) in active
        assert lifeguard._ledger_key(records[0].key) not in active


class TestRepairCheckSkipped:
    """A poisoned AS with no responsive routers must not fake a repair."""

    def test_sentinel_check_with_nothing_to_probe_is_skipped(self):
        scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
        check = scenario.lifeguard.sentinel_manager.check_repair(
            [], now=100.0
        )
        assert check.skipped
        assert not check.repaired
        assert check.probes_used == 0

    def test_unresponsive_poisoned_as_keeps_the_poison(self):
        scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
        lifeguard = scenario.lifeguard
        topo = scenario.topo
        asn = next(
            a
            for a in sorted(scenario.graph.transit_ases())
            if a != scenario.origin_asn
        )
        for rid in topo.routers_of(asn):
            topo.router(rid).responds_to_ping = False
        outage = OutageRecord(
            vp_name="origin",
            destination=scenario.targets[0],
            start=1000.0,
            detected=1110.0,
        )
        record = lifeguard._record_for(outage)
        record.state = RepairState.POISONED
        record.poisoned_asn = asn
        record.poison_time = 1300.0

        lifeguard._maybe_check_repair(record, now=5000.0)

        assert record.state is RepairState.POISONED
        assert record.repair_detected_time is None
        checks = [
            e
            for e in lifeguard.journal.for_outage(record.key)
            if e["event"] == "repair-check"
        ]
        assert checks and checks[-1].get("skipped") is True
        note = f"no responsive routers in AS{asn}: repair check skipped"
        assert record.notes.count(note) == 1
        # A second skipped round does not repeat the note.
        lifeguard._maybe_check_repair(record, now=5700.0)
        assert record.notes.count(note) == 1


class TestDegradedDeferral:
    """With the observing VP crashed by a FaultPlan, poisoning defers —
    and the journal records every deferred round, not just the first."""

    def test_vp_crash_defers_poisoning_until_vp_returns(self):
        scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
        lifeguard = scenario.lifeguard
        plan = FaultPlan()
        plan.add(
            FaultSpec(
                FaultKind.VP_CRASH, vp="origin", start=1200.0, end=4000.0
            )
        )
        FaultInjector(plan).attach(lifeguard)
        target = scenario.targets[0]
        bad_asn = _reverse_transit_for(scenario, target)
        lifeguard.prime_atlas(now=0.0)
        lifeguard.dataplane.failures.add(
            ASForwardingFailure(
                asn=bad_asn,
                toward=lifeguard.sentinel_manager.sentinel,
                start=1000.0,
                end=8200.0,
            )
        )
        lifeguard.run(start=30.0, end=9600.0)

        record = next(
            r for r in lifeguard.records if r.poisoned_asn == bad_asn
        )
        # Nothing was poisoned while the VP was down.
        assert record.poison_time >= 4000.0
        assert any(
            "down: isolation deferred" in note for note in record.notes
        )
        # Every deferred round made it into the journal individually.
        deferrals = [
            e
            for e in lifeguard.journal.of_event("deferred")
            if e.get("why") == "vp-down"
        ]
        assert len(deferrals) > 10
        assert all(1200.0 <= e["t"] < 4000.0 for e in deferrals)
        # Once the VP came back the repair completed normally.
        assert record.state is RepairState.UNPOISONED


_SETTLED = {
    RepairState.POISONED,
    RepairState.NOT_POISONED,
    RepairState.UNPOISONED,
}


def _mid_repair(lifeguard):
    """True when every record has settled (or its outage is over) and at
    least one poison is in flight — the crash point the property wants."""
    if not lifeguard.records:
        return False
    for record in lifeguard.records:
        if record.state in _SETTLED:
            continue
        if record.outage.end is not None:
            continue  # inert: outage over, nothing left to decide
        return False
    return any(
        r.state is RepairState.POISONED for r in lifeguard.records
    )


def _drive(seed, tmp_path, crash):
    """One full repair cycle; with *crash*, kill the controller between
    POISONED and UNPOISONED and recover it from the serialized journal."""
    scenario = build_deployment(scale="tiny", seed=seed, num_providers=2)
    lifeguard = scenario.lifeguard
    topo = scenario.topo
    target = scenario.targets[0]
    bad_asn = _reverse_transit_for(scenario, target)
    lifeguard.prime_atlas(now=0.0)
    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn,
            toward=lifeguard.sentinel_manager.sentinel,
            start=1000.0,
            end=8200.0,
        )
    )
    crashed_at = None
    now = 30.0
    while now <= 9600.0:
        if crash and crashed_at is None and _mid_repair(lifeguard):
            crashed_at = now
            # The process dies here.  Only what it persisted survives:
            # round-trip the journal through disk like a real restart.
            path = str(tmp_path / f"journal-{seed}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                for entry in lifeguard.journal.entries:
                    handle.write(
                        json.dumps(entry, sort_keys=True) + "\n"
                    )
            loaded = RepairJournal.load(path)
            failures = lifeguard.dataplane.failures
            config = lifeguard.config
            lifeguard = Lifeguard.recover(
                loaded,
                engine=scenario.engine,
                topo=topo,
                origin_asn=scenario.origin_asn,
                vantage_points=scenario.vantage_points,
                targets=scenario.targets,
                duration_history=generate_outage_trace(seed=seed).durations,
                config=config,
                now=now,
                failures=failures,
            )
        lifeguard.tick(now)
        now += 30.0
    return lifeguard, crashed_at


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_is_byte_identical_to_uninterrupted_run(
        self, seed, tmp_path
    ):
        base, _ = _drive(seed, tmp_path, crash=False)
        recovered, crashed_at = _drive(seed, tmp_path, crash=True)
        assert crashed_at is not None, "no mid-repair crash point reached"
        # The crash landed between POISONED and UNPOISONED.
        unpoisons = [
            e["t"] for e in recovered.journal.of_event("unpoison")
        ]
        assert all(t > crashed_at for t in unpoisons)
        # Recovery happened and carried the in-flight poison across.
        recovery = recovered.journal.of_event("recovered")
        assert len(recovery) == 1
        assert recovery[0]["active_poisons"] >= 1
        # The recovered controller finished the repair...
        assert any(
            r.state is RepairState.UNPOISONED for r in recovered.records
        )
        # ...and every record ended byte-identical to the run that never
        # crashed.
        assert [r.fingerprint() for r in recovered.records] == [
            r.fingerprint() for r in base.records
        ]
