#!/usr/bin/env python3
"""The §2.1 EC2 outage study on synthetic data: Fig. 1 and Fig. 5.

Generates the calibrated outage trace (10,308 partial outages, >= 90 s)
and prints the two headline analyses:

* Fig. 1 — the CDF of outage durations against the CDF of unavailability:
  most outages are short, but most *downtime* comes from the long tail.
* Fig. 5 — residual duration: once an outage has lasted X minutes, how
  much longer will it last?  This is the evidence behind LIFEGUARD's
  "wait ~5 minutes, then poison" policy.

Run:  python examples/ec2_outage_study.py
"""

from repro.analysis.residual import residual_duration_curve
from repro.control.decision import ResidualDurationModel
from repro.workloads.outages import generate_outage_trace


def main():
    trace = generate_outage_trace(seed=2012)
    print(f"generated {len(trace)} partial outages "
          f"({sum(trace.partial)} partial, min duration 90 s)\n")

    print("Fig. 1 - outage durations vs. contribution to unavailability")
    print(f"{'duration':>12}  {'CDF outages':>12}  {'CDF downtime':>13}")
    for minutes in (1.5, 2, 5, 10, 30, 60, 180, 600, 1440):
        seconds = minutes * 60
        events = trace.fraction_shorter_than(seconds)
        downtime = 1.0 - trace.unavailability_share_longer_than(seconds)
        print(f"{minutes:>9.1f} m  {events:>12.3f}  {downtime:>13.3f}")
    print(f"\n  anchor: {trace.fraction_shorter_than(600):.1%} of outages "
          "lasted <= 10 minutes (paper: >90%)")
    print(f"  anchor: {trace.unavailability_share_longer_than(600):.1%} of "
          "unavailability came from outages > 10 minutes (paper: 84%)\n")

    print("Fig. 5 - residual duration after an outage has lasted X minutes")
    print(f"{'elapsed':>8}  {'survivors':>9}  {'mean':>8}  {'median':>8}  "
          f"{'25th pct':>8}")
    curve = residual_duration_curve(
        trace.durations, elapsed_minutes=[0, 2, 5, 10, 15, 20, 25, 30]
    )
    for point in curve:
        print(f"{point.elapsed_minutes:>6.0f} m  {point.survivors:>9}  "
              f"{point.mean_minutes:>7.1f}m  {point.median_minutes:>7.1f}m  "
              f"{point.p25_minutes:>7.1f}m")

    model = ResidualDurationModel(trace.durations)
    p5 = model.survival_probability(300, 300)
    p10 = model.survival_probability(600, 300)
    print(f"\n  of outages lasting 5 min, {p5:.0%} lasted another 5+ "
          "(paper: 51%)")
    print(f"  of outages lasting 10 min, {p10:.0%} lasted another 5+ "
          "(paper: 68%)")

    decision = model.decide(elapsed=420.0)
    print(f"\n  decision for a 7-minute-old outage: "
          f"{'POISON' if decision.poison else 'wait'} - "
          f"{decision.rationale}")


if __name__ == "__main__":
    main()
