#!/usr/bin/env python3
"""Quickstart: watch LIFEGUARD repair a persistent reverse-path outage.

Builds a small synthetic Internet with a multihomed origin AS running
LIFEGUARD, injects a silent reverse-path failure in a transit AS, and runs
the monitoring loop.  LIFEGUARD detects the outage, waits out the
"will it resolve on its own?" window, isolates the failing AS with spoofed
probes and its historical path atlas, poisons that AS to reroute traffic,
and finally withdraws the poison once its sentinel prefix shows the
underlying failure has been repaired.

Run:  python examples/quickstart.py
"""

from repro.control.lifeguard import RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.workloads.scenarios import build_deployment


def pick_reverse_transit(scenario, target):
    """A transit AS on the reverse path from *target* back to the origin."""
    topo = scenario.topo
    lifeguard = scenario.lifeguard
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    hops = walk.as_level_hops(topo)
    return next(a for a in hops[1:-1] if a != scenario.origin_asn)


def main():
    print("Building a synthetic Internet with a LIFEGUARD deployment...")
    scenario = build_deployment(scale="tiny", seed=5, num_providers=2)
    lifeguard = scenario.lifeguard
    target = scenario.targets[0]
    bad_asn = pick_reverse_transit(scenario, target)
    print(f"  origin AS{scenario.origin_asn} "
          f"(production prefix {scenario.production_prefix}, "
          f"sentinel {lifeguard.sentinel_manager.sentinel})")
    print(f"  monitored target {target}, "
          f"failure will hit transit AS{bad_asn}\n")

    print("Priming the historical path atlas while everything works...")
    lifeguard.prime_atlas(now=0.0)

    print(f"Injecting a silent reverse-path failure in AS{bad_asn} "
          "(t=1000s..8200s):")
    print("  the AS keeps announcing routes but blackholes traffic "
          "toward the origin.\n")
    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn,
            toward=lifeguard.sentinel_manager.sentinel,
            start=1000.0,
            end=8200.0,
        )
    )

    print("Running the monitoring loop (30 s rounds)...\n")
    lifeguard.run(start=30.0, end=9600.0)

    for record in lifeguard.records:
        if record.poisoned_asn != bad_asn:
            continue
        outage = record.outage
        isolation = record.isolation
        print("LIFEGUARD repair timeline")
        print("-" * 60)
        print(f"t={outage.start:7.0f}s  outage begins "
              f"(vp={outage.vp_name} -> {outage.destination})")
        print(f"t={outage.detected:7.0f}s  outage detected "
              "(4 consecutive failed rounds)")
        print(f"t={record.poison_time:7.0f}s  isolation: direction="
              f"{isolation.direction.value}, blamed AS{isolation.blamed_asn}"
              f" ({isolation.probes_used} probes, "
              f"~{isolation.elapsed_seconds:.0f}s)")
        if isolation.traceroute_verdict != isolation.blamed_asn:
            print(f"{'':12}traceroute alone would have blamed "
                  f"AS{isolation.traceroute_verdict} - wrong!")
        print(f"t={record.poison_time:7.0f}s  poisoned AS{record.poisoned_asn}"
              f"; BGP reconverged in {record.convergence_seconds:.0f}s")
        print(f"t={outage.end:7.0f}s  monitor sees connectivity restored "
              "(traffic now avoids the failed AS)")
        print(f"t={record.repair_detected_time:7.0f}s  sentinel probes "
              "succeed: underlying failure repaired")
        print(f"t={record.unpoison_time:7.0f}s  poison withdrawn, "
              "baseline announcement restored")
        print(f"final state: {record.state.value}")
        assert record.state is RepairState.UNPOISONED
        break
    else:
        raise SystemExit("no repair happened - unexpected")


if __name__ == "__main__":
    main()
