#!/usr/bin/env python3
"""Selective poisoning: steer traffic off one AS link (§3.1.2, §5.2).

Recreates the paper's Internet2 experiment.  The origin has two providers
reaching a target transit AS over disjoint paths (UWash/PNW-Gigapop and
UWisc/WiscNet in the paper).  Poisoning the target on announcements via
ONE provider — while announcing clean via the other — makes the target
drop only the poisoned path: it keeps a route, but shifts its egress off
the "failing" link.  ASes not routing through the target are untouched.

Run:  python examples/selective_poisoning.py
"""

from repro.bgp.collectors import RouteCollector
from repro.bgp.messages import traversed_ases
from repro.workloads.scenarios import build_deployment


def main():
    scenario = build_deployment(scale="small", seed=3, num_providers=2)
    engine = scenario.engine
    graph = scenario.graph
    origin = scenario.origin_asn
    prefix = scenario.production_prefix
    controller = scenario.lifeguard.origin
    provider_a, provider_b = controller.providers

    # Find a transit AS that reaches the prefix via one of our providers
    # and could use the other: the selective-poisoning candidate.
    candidates = []
    for asn in graph.transit_ases():
        if asn in (provider_a, provider_b, origin):
            continue
        best = engine.best_route(asn, prefix)
        if best is None:
            continue
        used = traversed_ases(best.as_path, origin)
        if provider_a in used or provider_b in used:
            candidates.append((asn, used))
    target_asn, used = max(candidates, key=lambda c: graph.degree(c[0]))
    poisoned_provider = provider_a if provider_a in used else provider_b
    clean_provider = (
        provider_b if poisoned_provider == provider_a else provider_a
    )

    collector = RouteCollector(engine, set(graph.transit_ases()))
    before = {
        peer: collector.path_of(peer, prefix)
        for peer in collector.peers
    }

    print(f"origin AS{origin} providers: AS{provider_a}, AS{provider_b}")
    print(f"target AS{target_asn} currently reaches {prefix} via "
          f"{' -> '.join('AS%d' % a for a in used)}")
    print(f"\nselectively poisoning AS{target_asn} on announcements via "
          f"AS{poisoned_provider} (clean via AS{clean_provider})...\n")

    controller.poison_selectively(
        target_asn, via_providers=[poisoned_provider]
    )
    engine.run()

    after_route = engine.best_route(target_asn, prefix)
    assert after_route is not None, "target was cut off - not selective!"
    after_used = traversed_ases(after_route.as_path, origin)
    print(f"target AS{target_asn} now routes via "
          f"{' -> '.join('AS%d' % a for a in after_used)}"
          f" (egress neighbor AS{after_route.neighbor})")
    assert after_used and after_used[-1] == clean_provider

    # How many *other* ASes changed their route?
    changed = []
    for peer in collector.peers:
        if peer == target_asn:
            continue
        now_path = collector.path_of(peer, prefix)
        was = before[peer]
        if was is not None and now_path is not None:
            if traversed_ases(was, origin) != traversed_ases(
                now_path, origin
            ):
                changed.append(peer)
    print(f"\nother transit ASes whose traversed path changed: "
          f"{len(changed)} of {len(collector.peers) - 1}")
    for peer in changed:
        print(f"  AS{peer}: {traversed_ases(before[peer], origin)} -> "
              f"{traversed_ases(collector.path_of(peer, prefix), origin)}")
    print("\nselective poisoning shifted the target AS off the link "
          "without cutting it off, and (mostly) without disturbing others.")


if __name__ == "__main__":
    main()
