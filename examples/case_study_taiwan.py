#!/usr/bin/env python3
"""The §6 case study, re-enacted: Taiwan -> Wisconsin, October 3-4 2011.

The paper's narrative: after a day of transient problems, a persistent
reverse-path outage begins at 8:15 pm when the path from a Taiwanese
PlanetLab node back to the University of Wisconsin switches onto a
commercial network (UUNET) that terminates traceroutes.  LIFEGUARD's atlas
knows an older academic path whose hops still reach Wisconsin, so it
poisons the commercial AS; traffic converges onto the academic route.  The
sentinel prefix keeps failing through the commercial network until just
after 4 am, when the underlying problem is fixed and LIFEGUARD unpoisons.

We re-enact the same sequence on the synthetic topology with simulation
time anchored so t=0 is midnight on October 3.

Run:  python examples/case_study_taiwan.py
"""

from repro.control.lifeguard import RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.workloads.scenarios import build_deployment

HOUR = 3600.0
OUTAGE_START = 20.25 * HOUR       # 8:15 pm October 3
REPAIR_TIME = 28.08 * HOUR        # ~4:05 am October 4
END_OF_STUDY = 30.0 * HOUR


def clock(seconds):
    day = "Oct 3" if seconds < 24 * HOUR else "Oct 4"
    seconds = seconds % (24 * HOUR)
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    suffix = "am" if hours < 12 else "pm"
    display = hours % 12 or 12
    return f"{day} {display}:{minutes:02d}{suffix}"


def main():
    scenario = build_deployment(scale="small", seed=21, num_providers=2)
    lifeguard = scenario.lifeguard
    topo = scenario.topo

    # Cast the roles: the monitored destination is "the Taiwanese node";
    # the AS that will fail is "UUNET", a transit on its reverse path.
    target = scenario.targets[0]
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    reverse_walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    reverse_ases = reverse_walk.as_level_hops(topo)
    uunet = next(
        a for a in reverse_ases[1:-1] if a != scenario.origin_asn
    )
    print("cast: origin = University of Wisconsin "
          f"(AS{scenario.origin_asn}); destination = Taiwanese PlanetLab "
          f"node ({target}); failing commercial network = AS{uunet}\n")

    print(f"{clock(0)}: monitoring begins; atlas gathers historical "
          "forward and reverse paths")
    lifeguard.prime_atlas(now=0.0)
    # A month of history in the paper; a few extra atlas rounds here.
    for t in (4 * HOUR, 10 * HOUR, 16 * HOUR):
        lifeguard.refresher.refresh_all(scenario.targets, now=t)

    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=uunet,
            toward=lifeguard.sentinel_manager.sentinel,
            start=OUTAGE_START,
            end=REPAIR_TIME,
        )
    )
    print(f"{clock(OUTAGE_START)}: the path back from Taiwan switches "
          f"through AS{uunet}, which blackholes it - test traffic begins "
          "to fail\n")

    lifeguard.run(start=OUTAGE_START, end=END_OF_STUDY)

    record = next(
        r for r in lifeguard.records if r.poisoned_asn == uunet
    )
    print("timeline as LIFEGUARD recorded it:")
    print(f"  {clock(record.outage.start)}: persistent outage begins")
    print(f"  {clock(record.outage.detected)}: detected after four failed "
          "rounds")
    print(f"  {clock(record.poison_time)}: isolated as a "
          f"{record.isolation.direction.value}-path failure in "
          f"AS{record.isolation.blamed_asn}; hops on the old academic "
          "path still reached Wisconsin, so LIFEGUARD poisoned "
          f"AS{uunet}")
    print(f"  (convergence took {record.convergence_seconds:.0f}s; "
          "test traffic then flowed via the academic route)")
    print(f"  {clock(record.outage.end)}: monitor confirms connectivity "
          "restored on the production prefix")
    print(f"  {clock(record.repair_detected_time)}: sentinel traffic "
          f"through AS{uunet} works again - underlying failure fixed")
    print(f"  {clock(record.unpoison_time)}: poison withdrawn; baseline "
          "announcement restored")
    assert record.state is RepairState.UNPOISONED
    assert record.repair_detected_time >= REPAIR_TIME
    print("\nLIFEGUARD repaired the outage hours before the network "
          "fixed itself, then stepped out of the way.")


if __name__ == "__main__":
    main()
