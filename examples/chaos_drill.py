#!/usr/bin/env python3
"""Chaos drill: LIFEGUARD repairs an outage while its own tooling fails.

The quickstart shows the repair loop under lab conditions.  This drill
re-runs it the way a real deployment lives: a seeded fault injector is
attached to LIFEGUARD's *own* infrastructure — probes get lost, a helper
vantage point crashes mid-incident, a BGP session to a transit provider
resets, the path atlas goes stale, sentinel replies vanish — while a real
reverse-path failure burns in a transit AS.  The system must retry, defer
when its evidence is thin, and still converge on the right poison without
ever blaming a healthy AS.

Run:  python examples/chaos_drill.py
"""

from repro.control.lifeguard import RepairState
from repro.dataplane.failures import ASForwardingFailure
from repro.workloads.scenarios import build_chaos_deployment

#: 10% probe loss, plus scaled latency/BGP/atlas/sentinel faults, one
#: helper crash window and one transit session reset.
INTENSITY = 0.1


def pick_reverse_transit(scenario, target):
    """A transit AS on the reverse path from *target* back to the origin."""
    topo = scenario.topo
    lifeguard = scenario.lifeguard
    origin_router = topo.routers_of(scenario.origin_asn)[0]
    target_rid = lifeguard.dataplane.host_router(target)
    walk = lifeguard.dataplane.forward(
        target_rid, topo.router(origin_router).address
    )
    hops = walk.as_level_hops(topo)
    return next(a for a in hops[1:-1] if a != scenario.origin_asn)


def main():
    print("Building a LIFEGUARD deployment with a chaos plan attached...")
    scenario, injector = build_chaos_deployment(
        scale="tiny", seed=5, intensity=INTENSITY, chaos_start=900.0,
        num_providers=2,
    )
    lifeguard = scenario.lifeguard
    target = scenario.targets[0]
    bad_asn = pick_reverse_transit(scenario, target)
    print(f"  origin AS{scenario.origin_asn}, monitored target {target}")
    print(f"  chaos plan: {len(injector.plan.specs)} fault specs at "
          f"intensity {INTENSITY} (faults hit LIFEGUARD's probes, vantage "
          "points,")
    print("  BGP sessions, atlas and sentinel - never the monitored "
          "paths)\n")

    lifeguard.prime_atlas(now=0.0)
    print(f"Injecting the real failure: AS{bad_asn} blackholes reverse "
          "traffic (t=1000s..8200s).\n")
    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn,
            toward=lifeguard.sentinel_manager.sentinel,
            start=1000.0,
            end=8200.0,
        )
    )

    print("Running the monitoring loop under chaos...\n")
    lifeguard.run(start=30.0, end=12000.0)

    stats = injector.stats
    print("chaos fault report")
    print("-" * 60)
    print(f"  probes lost / timed out     {stats.probes_lost} / "
          f"{stats.probes_timed_out}")
    print(f"  vantage point crashes       {stats.vp_crashes} "
          f"(restores {stats.vp_restores})")
    print(f"  BGP session resets          {stats.session_resets}")
    print(f"  BGP messages dropped/duped  {stats.messages_dropped} / "
          f"{stats.messages_duplicated}")
    print(f"  atlas entries lost/cut      {stats.atlas_entries_dropped} / "
          f"{stats.atlas_entries_truncated}")
    print(f"  sentinel replies suppressed {stats.sentinel_suppressed}\n")

    repaired = [
        r for r in lifeguard.records if r.poisoned_asn == bad_asn
    ]
    wrong = [
        r
        for r in lifeguard.poisoned_records()
        if r.poisoned_asn != bad_asn
    ]
    deferrals = sum(
        1
        for r in lifeguard.records
        for note in r.notes
        if "deferr" in note
    )
    if not repaired or wrong:
        raise SystemExit("chaos drill failed - unexpected")

    record = repaired[0]
    print("repair under fire")
    print("-" * 60)
    print(f"t={record.outage.detected:7.0f}s  outage detected")
    print(f"t={record.poison_time:7.0f}s  isolation blamed AS"
          f"{record.isolation.blamed_asn} (confidence "
          f"{record.isolation.confidence:.2f}, "
          f"attempt {record.isolation_attempts} of "
          f"{lifeguard.config.max_isolation_attempts}) -> poisoned")
    print(f"t={record.repair_detected_time:7.0f}s  sentinel saw the "
          "repair through the probe loss")
    print(f"t={record.unpoison_time:7.0f}s  poison withdrawn")
    if deferrals:
        print(f"low-confidence deferrals along the way: {deferrals} "
              "(held fire instead of poisoning on thin evidence)")
    print(f"false poisons: {len(wrong)}")
    assert record.state is RepairState.UNPOISONED
    print("\nrepaired and unpoisoned despite the chaos.")


if __name__ == "__main__":
    main()
