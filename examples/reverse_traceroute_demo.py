#!/usr/bin/env python3
"""Reverse traceroute, the measurement tool LIFEGUARD is built on.

Traceroute shows the path *to* a destination; the path *back* is usually
different (asymmetric routing) and invisible — unless you control the
destination.  Reverse traceroute [NSDI'10] measures it anyway: the IPv4
record-route option keeps stamping router addresses on the *reply* if
the probe reaches the destination with some of its nine slots unused, so
a vantage point within eight hops, spoofing the measurement source's
address, reveals the first reverse hops; iterating from each newly
discovered hop assembles the whole path.

This demo measures a reverse path hop by hop, shows it differs from the
forward path, and shows the tool failing honestly during a reverse-path
outage (which is why LIFEGUARD keeps a *historical* atlas).

Run:  python examples/reverse_traceroute_demo.py
"""

from repro.dataplane.failures import ASForwardingFailure
from repro.dataplane.probes import Prober
from repro.dataplane.reverse_traceroute import ReverseTracerouteTool
from repro.topology.generate import prefix_for_asn
from repro.workloads.scenarios import build_deployment


def main():
    scenario = build_deployment(scale="small", seed=33, num_providers=2,
                                num_helper_vps=8)
    topo = scenario.topo
    prober = Prober(scenario.lifeguard.dataplane)
    tool = ReverseTracerouteTool(prober)

    vps = scenario.vantage_points
    source = vps.get("origin")
    helpers = [vp.rid for vp in vps.others("origin")]
    target = scenario.targets[0]

    def asn_of(address):
        return topo.router_by_address(address).asn

    print(f"source: {source.rid}, target: {target}\n")

    forward = prober.traceroute(source.rid, target)
    print("forward path (traceroute):")
    for hop in forward.responding_hops():
        print(f"  {hop}  (AS{asn_of(hop)})")

    before = prober.probes_sent
    measured = tool.measure_incremental(
        source.rid, target, vantage_rids=helpers
    )
    assert measured is not None, "VP coverage too thin for this seed"
    print(f"\nreverse path (incremental record-route measurement, "
          f"{prober.probes_sent - before} probes):")
    for hop in measured.hops:
        print(f"  {hop}  (AS{asn_of(hop)})")

    forward_ases = [asn_of(h) for h in forward.responding_hops()]
    reverse_ases = [asn_of(h) for h in measured.hops]
    if [a for a in forward_ases] != list(reversed(reverse_ases)):
        print("\nthe paths are asymmetric - exactly why the reverse "
              "direction must be measured, not assumed.")

    # Now break the reverse path and watch the tool fail honestly.
    bad_asn = reverse_ases[1] if len(reverse_ases) > 1 else reverse_ases[0]
    prober.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn, toward=prefix_for_asn(scenario.origin_asn)
        )
    )
    broken = tool.measure_incremental(
        source.rid, target, vantage_rids=helpers
    )
    print(f"\nafter injecting a reverse-path failure in AS{bad_asn}: "
          f"measurement returns {broken!r}")
    print("the tool cannot measure a broken direction - LIFEGUARD pings "
          "hops from its *historical* atlas instead (see "
          "examples/failure_isolation_demo.py).")


if __name__ == "__main__":
    main()
