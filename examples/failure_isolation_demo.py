#!/usr/bin/env python3
"""Figure-4 walkthrough: why traceroute misleads and how LIFEGUARD isolates.

Reproduces the paper's GMU -> Smartkom example in the simulator: a transit
AS on the *reverse* path silently loses its route back to the source.
A plain traceroute from the source dies mid-path and appears to implicate
a forward-path AS; LIFEGUARD's spoofed probes prove the forward path is
fine, and pinging the hops of historical reverse paths exposes the
reachability horizon around the real culprit.

Run:  python examples/failure_isolation_demo.py
"""

from repro.dataplane.failures import ASForwardingFailure
from repro.isolation.direction import FailureDirection
from repro.isolation.isolator import FailureIsolator
from repro.topology.generate import prefix_for_asn
from repro.workloads.scenarios import build_deployment


def main():
    scenario = build_deployment(scale="small", seed=9, num_providers=2,
                                num_helper_vps=6)
    topo = scenario.topo
    lifeguard = scenario.lifeguard
    prober = lifeguard.prober
    vps = scenario.vantage_points
    source = vps.get("origin")

    # Pick the monitored target with the longest reverse path so the
    # walkthrough has interesting intermediate hops, and break a transit
    # AS in the middle of that path.
    def reverse_path_of(target):
        target_rid = lifeguard.dataplane.host_router(target)
        return lifeguard.dataplane.forward(
            target_rid, topo.router(source.rid).address
        )

    target = max(
        scenario.targets,
        key=lambda t: len(reverse_path_of(t).as_level_hops(topo)),
    )
    reverse_ases = reverse_path_of(target).as_level_hops(topo)
    transits = [a for a in reverse_ases[1:-1] if a != scenario.origin_asn]
    bad_asn = transits[len(transits) // 2]
    print(f"source: {source.name} (AS{topo.router(source.rid).asn})   "
          f"target: {target} (AS{topo.router_by_address(target).asn})")
    print(f"reverse path AS-level hops: "
          f"{' -> '.join('AS%d' % a for a in reverse_ases)}")
    print(f"injecting silent reverse-path failure in AS{bad_asn}\n")

    lifeguard.prime_atlas(now=0.0)
    lifeguard.dataplane.failures.add(
        ASForwardingFailure(
            asn=bad_asn,
            toward=prefix_for_asn(scenario.origin_asn),
            start=100.0,
        )
    )
    lifeguard.dataplane.now = 200.0

    # --- what an operator sees with traceroute alone -------------------
    trace = prober.traceroute(source.rid, target)
    print("traceroute from the source during the failure:")
    for index, hop in enumerate(trace.hops, 1):
        if hop is None:
            print(f"  {index:2d}  *")
        else:
            asn = topo.router_by_address(hop).asn
            print(f"  {index:2d}  {hop}  (AS{asn})")
    last = trace.last_responsive()
    last_asn = topo.router_by_address(last).asn if last else None
    print(f"  -> terminates in AS{last_asn}; looks like a forward-path "
          f"problem there. It is not.\n")

    # --- LIFEGUARD's isolation ------------------------------------------
    isolator = FailureIsolator(
        prober, vps, lifeguard.atlas, lifeguard.responsiveness
    )
    result = isolator.isolate("origin", target, now=200.0)
    print("LIFEGUARD isolation:")
    print(f"  direction: {result.direction.value} "
          "(spoofed probes reached helpers, so the forward path works)")
    print(f"  working forward path measured via spoofed traceroute: "
          f"{len(result.working_path)} hops")
    print("  reachability horizon on the historical reverse path:")
    for verdict in result.horizon.verdicts:
        print(f"    {str(verdict.address):>12}  AS{verdict.asn:<6} "
              f"{verdict.status.value}")
    print(f"  blamed: AS{result.blamed_asn}"
          + (f" (link AS{result.blamed_link[0]}-AS{result.blamed_link[1]})"
             if result.blamed_link else ""))
    print(f"  traceroute-only verdict: AS{result.traceroute_verdict}")
    print(f"  probes used: {result.probes_used}, "
          f"isolation time ~{result.elapsed_seconds:.0f}s")

    assert result.direction is FailureDirection.REVERSE
    assert result.blamed_asn == bad_asn
    print(f"\ncorrect: the injected failure was in AS{bad_asn}.")


if __name__ == "__main__":
    main()
